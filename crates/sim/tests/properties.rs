//! Property tests on the simulation substrate: policy contracts, LRU
//! inclusion, sampler statistics, and partition-scheme accounting hold on
//! arbitrary access streams, not just the unit tests' hand-picked ones.

use proptest::prelude::*;
use talus_sim::monitor::{MattsonMonitor, Monitor, SampledMattson};
use talus_sim::part::{FutilityScaled, PartitionedCacheModel, VantageLike};
use talus_sim::policy::PolicyKind;
use talus_sim::{
    AccessCtx, CacheModel, FullyAssocLru, LineAddr, PartitionId, SetAssocCache, ShadowSampler,
};

/// Strategy: a short access stream over a bounded address space.
fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..4096, 64..2048)
}

/// All online policies (Belady needs oracle annotations; tested separately).
fn online_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::TaDrrip,
        PolicyKind::Dip,
        PolicyKind::Pdp,
        PolicyKind::Ship,
        PolicyKind::Random,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LRU's stack property (Mattson): a bigger LRU cache never misses
    /// more than a smaller one on the same stream.
    #[test]
    fn lru_inclusion_property(stream in arb_stream(), small in 16u64..256) {
        let big = small * 2;
        let ctx = AccessCtx::new();
        let mut small_cache = FullyAssocLru::new(small);
        let mut big_cache = FullyAssocLru::new(big);
        for &l in &stream {
            small_cache.access(LineAddr(l), &ctx);
            big_cache.access(LineAddr(l), &ctx);
        }
        prop_assert!(big_cache.stats().misses() <= small_cache.stats().misses());
    }

    /// The Mattson monitor's curve is non-increasing in size and matches
    /// direct simulation of a fully-associative LRU cache at every size.
    #[test]
    fn mattson_matches_direct_lru(stream in arb_stream(), cap in 32u64..512) {
        let mut mon = MattsonMonitor::new(4096);
        let ctx = AccessCtx::new();
        let mut cache = FullyAssocLru::new(cap);
        for &l in &stream {
            mon.record(LineAddr(l));
            cache.access(LineAddr(l), &ctx);
        }
        // curve() interpolates on a 64-point grid; exactness is only
        // promised at requested grid sizes, so evaluate there.
        let curve = mon.curve_on_grid(&[cap]);
        let predicted = curve.value_at(cap as f64);
        let actual = cache.stats().miss_rate();
        prop_assert!((predicted - actual).abs() < 1e-9,
            "Mattson {predicted} vs direct {actual} at {cap}");
    }

    /// Every policy's victim always comes from the candidate set, and
    /// every access is classified hit or miss exactly once (stats add up).
    #[test]
    fn policies_honor_contract_on_random_streams(stream in arb_stream(), seed in any::<u64>()) {
        let ctx = AccessCtx::new();
        for kind in online_policies() {
            let mut cache = SetAssocCache::new(512, 8, kind.build(seed), seed);
            for &l in &stream {
                cache.access(LineAddr(l), &ctx);
            }
            let s = cache.stats();
            prop_assert_eq!(s.accesses(), stream.len() as u64, "{}", kind.label());
            prop_assert_eq!(s.hits() + s.misses(), s.accesses());
        }
    }

    /// The shadow sampler is deterministic per line and its acceptance
    /// fraction tracks ρ.
    #[test]
    fn shadow_sampler_is_deterministic_and_calibrated(
        rho_pct in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let rho = rho_pct as f64 / 100.0;
        let mut s = ShadowSampler::new(seed);
        s.set_rate(rho);
        let mut to_alpha = 0u64;
        let n = 20_000u64;
        for l in 0..n {
            let first = s.goes_to_alpha(LineAddr(l));
            prop_assert_eq!(first, s.goes_to_alpha(LineAddr(l)), "must be deterministic");
            if first {
                to_alpha += 1;
            }
        }
        let frac = to_alpha as f64 / n as f64;
        // The limit register is 8-bit, so calibration is within ~1/256 + noise.
        prop_assert!((frac - rho).abs() < 0.02, "rho {rho} measured {frac}");
    }

    /// Partitioned schemes never lose or invent accesses, and occupancy
    /// never exceeds capacity.
    #[test]
    fn partition_accounting_is_conserved(
        stream in arb_stream(),
        split_pct in 1u64..100,
        seed in any::<u64>(),
    ) {
        let capacity = 1024u64;
        let s0 = capacity * split_pct / 100;
        let mut vantage = VantageLike::new(capacity, 16, 2, seed);
        vantage.set_partition_sizes(&[s0, capacity - s0]);
        let mut futility = FutilityScaled::new(capacity, 16, 2, seed);
        futility.set_partition_sizes(&[s0, capacity - s0]);
        let ctx = AccessCtx::new();
        for (i, &l) in stream.iter().enumerate() {
            let p = PartitionId((i % 2) as u32);
            vantage.access(p, LineAddr(l), &ctx);
            futility.access(p, LineAddr(l), &ctx);
        }
        for cache in [&vantage.total_stats(), &futility.total_stats()] {
            prop_assert_eq!(cache.accesses(), stream.len() as u64);
        }
        let v_occ = vantage.occupancy(PartitionId(0)) + vantage.occupancy(PartitionId(1));
        let f_occ = futility.occupancy(PartitionId(0)) + futility.occupancy(PartitionId(1));
        prop_assert!(v_occ <= capacity, "vantage occupancy {v_occ}");
        prop_assert!(f_occ <= capacity, "futility occupancy {f_occ}");
    }

    /// Re-running any policy on the same stream with the same seed gives
    /// identical miss counts (end-to-end determinism).
    #[test]
    fn simulation_is_deterministic(stream in arb_stream(), seed in any::<u64>()) {
        for kind in [PolicyKind::Drrip, PolicyKind::Pdp, PolicyKind::Ship, PolicyKind::Random] {
            let run = || {
                let ctx = AccessCtx::new();
                let mut cache = SetAssocCache::new(256, 8, kind.build(seed), seed);
                for &l in &stream {
                    cache.access(LineAddr(l), &ctx);
                }
                cache.stats().misses()
            };
            prop_assert_eq!(run(), run(), "{}", kind.label());
        }
    }

    /// A zero-sized partition bypasses: it never hits and never holds
    /// lines, for both fine-grained schemes.
    #[test]
    fn zero_partitions_bypass(stream in arb_stream(), seed in any::<u64>()) {
        let mut vantage = VantageLike::new(512, 16, 2, seed);
        vantage.set_partition_sizes(&[0, 512]);
        let mut futility = FutilityScaled::new(512, 16, 2, seed);
        futility.set_partition_sizes(&[0, 512]);
        let ctx = AccessCtx::new();
        for &l in &stream {
            vantage.access(PartitionId(0), LineAddr(l), &ctx);
            futility.access(PartitionId(0), LineAddr(l), &ctx);
        }
        prop_assert_eq!(vantage.partition_stats(PartitionId(0)).hits(), 0);
        prop_assert_eq!(futility.partition_stats(PartitionId(0)).hits(), 0);
        prop_assert_eq!(vantage.occupancy(PartitionId(0)), 0);
        prop_assert_eq!(futility.occupancy(PartitionId(0)), 0);
    }
}

// Sampled-vs-exact convergence drives two full monitors over long streams
// per case, so these properties get a smaller case budget than the cheap
// contracts above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// SHARDS-style sampling converges to the exact stack-distance curve
    /// on uniform streams: after a warm-up (so cold compulsory misses
    /// don't dominate), the 1/16-sampled and exact curves stay within
    /// L∞ < 0.05 across the whole grid. Uniform curves are smooth, so
    /// plain L∞ applies — cliff streams are tested below with a guard
    /// band around the cliff, where L∞ at a vertical edge is
    /// ill-conditioned by the sampling noise itself.
    #[test]
    fn sampled_mattson_converges_on_uniform_streams(
        lines in 3000u64..6000,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            LineAddr((state >> 33) % lines)
        };
        let mut exact = MattsonMonitor::new(2 * lines);
        let mut sampled = SampledMattson::new(2 * lines, 16, seed ^ 0xABCD);
        let warm: Vec<LineAddr> = (0..4 * lines).map(|_| next()).collect();
        exact.record_block(&warm);
        sampled.record_block(&warm);
        exact.reset();
        sampled.reset();
        let len = (12 * lines) as usize;
        let block: Vec<LineAddr> = (0..len).map(|_| next()).collect();
        exact.record_block(&block);
        sampled.record_block(&block);
        // Post-filter accounting: a 1/16 spatial filter passes a small
        // fraction of the stream, and the observed count is the full one.
        prop_assert_eq!(sampled.observed_accesses(), len as u64);
        prop_assert!(sampled.sampled_accesses() < len as u64 / 8);
        prop_assert!(sampled.sampled_accesses() > 0);
        let grid: Vec<u64> = (0..=32).map(|i| i * 2 * lines / 32).collect();
        let ec = exact.curve_on_grid(&grid);
        let sc = sampled.curve_on_grid(&grid);
        for &g in &grid {
            let err = (ec.value_at(g as f64) - sc.value_at(g as f64)).abs();
            prop_assert!(err < 0.05, "L∞ {err} at size {g} ({lines} lines)");
        }
    }

    /// On scan (cliff) streams the sampled cliff lands within a few
    /// percent of the true one: after a warm-up pass, curves match off a
    /// ±20% guard band, and the transition completes inside it.
    #[test]
    fn sampled_mattson_locates_cliffs_on_scan_streams(
        lines in 4096u64..8192,
        seed in any::<u64>(),
    ) {
        let mut exact = MattsonMonitor::new(2 * lines);
        let mut sampled = SampledMattson::new(2 * lines, 16, seed);
        let warm: Vec<LineAddr> = (0..lines).map(LineAddr).collect();
        exact.record_block(&warm);
        sampled.record_block(&warm);
        exact.reset();
        sampled.reset();
        let block: Vec<LineAddr> = (0..5 * lines).map(|i| LineAddr(i % lines)).collect();
        exact.record_block(&block);
        sampled.record_block(&block);
        let guard = lines / 5;
        let grid: Vec<u64> = (0..=32)
            .map(|i| i * 2 * lines / 32)
            .filter(|&g| g < lines - guard || g > lines + guard)
            .collect();
        let ec = exact.curve_on_grid(&grid);
        let sc = sampled.curve_on_grid(&grid);
        for &g in &grid {
            let err = (ec.value_at(g as f64) - sc.value_at(g as f64)).abs();
            prop_assert!(err < 0.05, "L∞ {err} at size {g} off the cliff band ({lines} lines)");
        }
        let full = sampled.curve_on_grid(&[lines - guard, lines + guard]);
        prop_assert!(full.value_at((lines - guard) as f64) > 0.9, "below the cliff");
        prop_assert!(full.value_at((lines + guard) as f64) < 0.1, "above the cliff");
    }
}
