//! Property tests on the simulation substrate: policy contracts, LRU
//! inclusion, sampler statistics, and partition-scheme accounting hold on
//! arbitrary access streams, not just the unit tests' hand-picked ones.

use proptest::prelude::*;
use talus_sim::monitor::{
    AdaptiveCurveSampler, CurveSampler, MattsonMonitor, Monitor, SampledMattson,
};
use talus_sim::part::{
    FutilityScaled, IdealPartitioned, PartitionedCacheModel, SetPartitioned, VantageLike,
    WayPartitioned,
};
use talus_sim::policy::{Lru, PolicyKind};
use talus_sim::{
    AccessCtx, CacheModel, FullyAssocLru, LineAddr, PartitionId, SetAssocCache, ShadowSampler,
};

/// Strategy: a short access stream over a bounded address space.
fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..4096, 64..2048)
}

/// The three stream shapes the fast-path equivalence suite runs on: a
/// uniform random mix, a cyclic scan (the canonical cliff), and a phase
/// change (uniform working set, then a scan over fresh addresses).
fn equivalence_streams(len: usize, seed: u64) -> Vec<(&'static str, Vec<LineAddr>)> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let uniform: Vec<LineAddr> = (0..len).map(|_| LineAddr(next() % 3000)).collect();
    let scan: Vec<LineAddr> = (0..len as u64).map(|i| LineAddr(i % 1500)).collect();
    let phase: Vec<LineAddr> = (0..len as u64)
        .map(|i| {
            if (i as usize) < len / 2 {
                LineAddr(next() % 1024)
            } else {
                LineAddr((1 << 20) | (i % 2048))
            }
        })
        .collect();
    vec![
        ("uniform", uniform),
        ("scan", scan),
        ("phase-change", phase),
    ]
}

/// All online policies (Belady needs oracle annotations; tested separately).
fn online_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::TaDrrip,
        PolicyKind::Dip,
        PolicyKind::Pdp,
        PolicyKind::Ship,
        PolicyKind::Random,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LRU's stack property (Mattson): a bigger LRU cache never misses
    /// more than a smaller one on the same stream.
    #[test]
    fn lru_inclusion_property(stream in arb_stream(), small in 16u64..256) {
        let big = small * 2;
        let ctx = AccessCtx::new();
        let mut small_cache = FullyAssocLru::new(small);
        let mut big_cache = FullyAssocLru::new(big);
        for &l in &stream {
            small_cache.access(LineAddr(l), &ctx);
            big_cache.access(LineAddr(l), &ctx);
        }
        prop_assert!(big_cache.stats().misses() <= small_cache.stats().misses());
    }

    /// The Mattson monitor's curve is non-increasing in size and matches
    /// direct simulation of a fully-associative LRU cache at every size.
    #[test]
    fn mattson_matches_direct_lru(stream in arb_stream(), cap in 32u64..512) {
        let mut mon = MattsonMonitor::new(4096);
        let ctx = AccessCtx::new();
        let mut cache = FullyAssocLru::new(cap);
        for &l in &stream {
            mon.record(LineAddr(l));
            cache.access(LineAddr(l), &ctx);
        }
        // curve() interpolates on a 64-point grid; exactness is only
        // promised at requested grid sizes, so evaluate there.
        let curve = mon.curve_on_grid(&[cap]);
        let predicted = curve.value_at(cap as f64);
        let actual = cache.stats().miss_rate();
        prop_assert!((predicted - actual).abs() < 1e-9,
            "Mattson {predicted} vs direct {actual} at {cap}");
    }

    /// Every policy's victim always comes from the candidate set, and
    /// every access is classified hit or miss exactly once (stats add up).
    #[test]
    fn policies_honor_contract_on_random_streams(stream in arb_stream(), seed in any::<u64>()) {
        let ctx = AccessCtx::new();
        for kind in online_policies() {
            let mut cache = SetAssocCache::new(512, 8, kind.build(seed), seed);
            for &l in &stream {
                cache.access(LineAddr(l), &ctx);
            }
            let s = cache.stats();
            prop_assert_eq!(s.accesses(), stream.len() as u64, "{}", kind.label());
            prop_assert_eq!(s.hits() + s.misses(), s.accesses());
        }
    }

    /// The shadow sampler is deterministic per line and its acceptance
    /// fraction tracks ρ.
    #[test]
    fn shadow_sampler_is_deterministic_and_calibrated(
        rho_pct in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let rho = rho_pct as f64 / 100.0;
        let mut s = ShadowSampler::new(seed);
        s.set_rate(rho);
        let mut to_alpha = 0u64;
        let n = 20_000u64;
        for l in 0..n {
            let first = s.goes_to_alpha(LineAddr(l));
            prop_assert_eq!(first, s.goes_to_alpha(LineAddr(l)), "must be deterministic");
            if first {
                to_alpha += 1;
            }
        }
        let frac = to_alpha as f64 / n as f64;
        // The limit register is 8-bit, so calibration is within ~1/256 + noise.
        prop_assert!((frac - rho).abs() < 0.02, "rho {rho} measured {frac}");
    }

    /// Partitioned schemes never lose or invent accesses, and occupancy
    /// never exceeds capacity.
    #[test]
    fn partition_accounting_is_conserved(
        stream in arb_stream(),
        split_pct in 1u64..100,
        seed in any::<u64>(),
    ) {
        let capacity = 1024u64;
        let s0 = capacity * split_pct / 100;
        let mut vantage = VantageLike::new(capacity, 16, 2, seed);
        vantage.set_partition_sizes(&[s0, capacity - s0]);
        let mut futility = FutilityScaled::new(capacity, 16, 2, seed);
        futility.set_partition_sizes(&[s0, capacity - s0]);
        let ctx = AccessCtx::new();
        for (i, &l) in stream.iter().enumerate() {
            let p = PartitionId((i % 2) as u32);
            vantage.access(p, LineAddr(l), &ctx);
            futility.access(p, LineAddr(l), &ctx);
        }
        for cache in [&vantage.total_stats(), &futility.total_stats()] {
            prop_assert_eq!(cache.accesses(), stream.len() as u64);
        }
        let v_occ = vantage.occupancy(PartitionId(0)) + vantage.occupancy(PartitionId(1));
        let f_occ = futility.occupancy(PartitionId(0)) + futility.occupancy(PartitionId(1));
        prop_assert!(v_occ <= capacity, "vantage occupancy {v_occ}");
        prop_assert!(f_occ <= capacity, "futility occupancy {f_occ}");
    }

    /// Re-running any policy on the same stream with the same seed gives
    /// identical miss counts (end-to-end determinism).
    #[test]
    fn simulation_is_deterministic(stream in arb_stream(), seed in any::<u64>()) {
        for kind in [PolicyKind::Drrip, PolicyKind::Pdp, PolicyKind::Ship, PolicyKind::Random] {
            let run = || {
                let ctx = AccessCtx::new();
                let mut cache = SetAssocCache::new(256, 8, kind.build(seed), seed);
                for &l in &stream {
                    cache.access(LineAddr(l), &ctx);
                }
                cache.stats().misses()
            };
            prop_assert_eq!(run(), run(), "{}", kind.label());
        }
    }

    /// A zero-sized partition bypasses: it never hits and never holds
    /// lines, for both fine-grained schemes.
    #[test]
    fn zero_partitions_bypass(stream in arb_stream(), seed in any::<u64>()) {
        let mut vantage = VantageLike::new(512, 16, 2, seed);
        vantage.set_partition_sizes(&[0, 512]);
        let mut futility = FutilityScaled::new(512, 16, 2, seed);
        futility.set_partition_sizes(&[0, 512]);
        let ctx = AccessCtx::new();
        for &l in &stream {
            vantage.access(PartitionId(0), LineAddr(l), &ctx);
            futility.access(PartitionId(0), LineAddr(l), &ctx);
        }
        prop_assert_eq!(vantage.partition_stats(PartitionId(0)).hits(), 0);
        prop_assert_eq!(futility.partition_stats(PartitionId(0)).hits(), 0);
        prop_assert_eq!(vantage.occupancy(PartitionId(0)), 0);
        prop_assert_eq!(futility.occupancy(PartitionId(0)), 0);
    }
}

// Sampled-vs-exact convergence drives two full monitors over long streams
// per case, so these properties get a smaller case budget than the cheap
// contracts above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// SHARDS-style sampling converges to the exact stack-distance curve
    /// on uniform streams: after a warm-up (so cold compulsory misses
    /// don't dominate), the 1/16-sampled and exact curves stay within
    /// L∞ < 0.05 across the whole grid. Uniform curves are smooth, so
    /// plain L∞ applies — cliff streams are tested below with a guard
    /// band around the cliff, where L∞ at a vertical edge is
    /// ill-conditioned by the sampling noise itself.
    #[test]
    fn sampled_mattson_converges_on_uniform_streams(
        lines in 3000u64..6000,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            LineAddr((state >> 33) % lines)
        };
        let mut exact = MattsonMonitor::new(2 * lines);
        let mut sampled = SampledMattson::new(2 * lines, 16, seed ^ 0xABCD);
        let warm: Vec<LineAddr> = (0..4 * lines).map(|_| next()).collect();
        exact.record_block(&warm);
        sampled.record_block(&warm);
        exact.reset();
        sampled.reset();
        let len = (12 * lines) as usize;
        let block: Vec<LineAddr> = (0..len).map(|_| next()).collect();
        exact.record_block(&block);
        sampled.record_block(&block);
        // Post-filter accounting: a 1/16 spatial filter passes a small
        // fraction of the stream, and the observed count is the full one.
        prop_assert_eq!(sampled.observed_accesses(), len as u64);
        prop_assert!(sampled.sampled_accesses() < len as u64 / 8);
        prop_assert!(sampled.sampled_accesses() > 0);
        let grid: Vec<u64> = (0..=32).map(|i| i * 2 * lines / 32).collect();
        let ec = exact.curve_on_grid(&grid);
        let sc = sampled.curve_on_grid(&grid);
        for &g in &grid {
            let err = (ec.value_at(g as f64) - sc.value_at(g as f64)).abs();
            prop_assert!(err < 0.05, "L∞ {err} at size {g} ({lines} lines)");
        }
    }

    /// On scan (cliff) streams the sampled cliff lands within a few
    /// percent of the true one: after a warm-up pass, curves match off a
    /// ±20% guard band, and the transition completes inside it.
    #[test]
    fn sampled_mattson_locates_cliffs_on_scan_streams(
        lines in 4096u64..8192,
        seed in any::<u64>(),
    ) {
        let mut exact = MattsonMonitor::new(2 * lines);
        let mut sampled = SampledMattson::new(2 * lines, 16, seed);
        let warm: Vec<LineAddr> = (0..lines).map(LineAddr).collect();
        exact.record_block(&warm);
        sampled.record_block(&warm);
        exact.reset();
        sampled.reset();
        let block: Vec<LineAddr> = (0..5 * lines).map(|i| LineAddr(i % lines)).collect();
        exact.record_block(&block);
        sampled.record_block(&block);
        let guard = lines / 5;
        let grid: Vec<u64> = (0..=32)
            .map(|i| i * 2 * lines / 32)
            .filter(|&g| g < lines - guard || g > lines + guard)
            .collect();
        let ec = exact.curve_on_grid(&grid);
        let sc = sampled.curve_on_grid(&grid);
        for &g in &grid {
            let err = (ec.value_at(g as f64) - sc.value_at(g as f64)).abs();
            prop_assert!(err < 0.05, "L∞ {err} at size {g} off the cliff band ({lines} lines)");
        }
        let full = sampled.curve_on_grid(&[lines - guard, lines + guard]);
        prop_assert!(full.value_at((lines - guard) as f64) > 0.9, "below the cliff");
        prop_assert!(full.value_at((lines + guard) as f64) < 0.1, "above the cliff");
    }
}

/// Splits `lines` into irregular chunks (1, 7, 64, 256, 3, …) so block
/// paths are exercised across degenerate and large block sizes alike.
fn irregular_chunks(lines: &[LineAddr]) -> Vec<&[LineAddr]> {
    const SIZES: [usize; 5] = [1, 7, 64, 256, 3];
    let mut chunks = Vec::new();
    let mut rest = lines;
    let mut i = 0;
    while !rest.is_empty() {
        let take = SIZES[i % SIZES.len()].min(rest.len());
        let (head, tail) = rest.split_at(take);
        chunks.push(head);
        rest = tail;
        i += 1;
    }
    chunks
}

/// Per-access vs enum-dispatch and per-access vs block equivalence: the
/// fast paths this PR introduced must be *bit-for-bit* identical to the
/// original `Box<dyn ReplacementPolicy>` / one-access-at-a-time code, not
/// just statistically close.
mod fast_path_equivalence {
    use super::*;

    /// Every built-in `PolicyKind` produces the identical hit/miss
    /// *sequence* through `AnyPolicy` as through its old boxed
    /// construction, on uniform, scan, and phase-change streams.
    #[test]
    fn any_policy_matches_boxed_dispatch() {
        for kind in online_policies() {
            for (label, stream) in equivalence_streams(30_000, 0xA11F ^ kind.label().len() as u64) {
                let mut boxed = SetAssocCache::new(2048, 16, kind.build(7), 11);
                let mut enumd = SetAssocCache::new(2048, 16, kind.build_any(7), 11);
                for (i, &line) in stream.iter().enumerate() {
                    // Rotate issuing threads so thread-aware policies
                    // (TA-DRRIP) exercise per-thread state too.
                    let ctx = AccessCtx::from_thread(talus_sim::ThreadId((i % 3) as u16));
                    assert_eq!(
                        boxed.access(line, &ctx),
                        enumd.access(line, &ctx),
                        "{} diverged on {label} at access {i}",
                        kind.label()
                    );
                }
                assert_eq!(boxed.stats(), enumd.stats(), "{} on {label}", kind.label());
            }
        }
    }

    /// `SetAssocCache::access_block` is the per-access loop, bit for bit,
    /// for every built-in policy.
    #[test]
    fn set_assoc_block_matches_per_access() {
        for kind in online_policies() {
            for (label, stream) in equivalence_streams(30_000, 0xB10C) {
                let ctx = AccessCtx::new();
                let mut single = SetAssocCache::new(1024, 16, kind.build_any(3), 5);
                let mut block = SetAssocCache::new(1024, 16, kind.build_any(3), 5);
                for &line in &stream {
                    single.access(line, &ctx);
                }
                for chunk in irregular_chunks(&stream) {
                    block.access_block(chunk, &ctx);
                }
                assert_eq!(single.stats(), block.stats(), "{} on {label}", kind.label());
                // Contents must agree too: replay a probe pass and compare
                // every outcome.
                for &line in stream.iter().rev().take(2000) {
                    assert_eq!(
                        single.access(line, &ctx),
                        block.access(line, &ctx),
                        "{} probe diverged on {label}",
                        kind.label()
                    );
                }
            }
        }
    }

    /// Every partition scheme's `access_block` is its per-access loop,
    /// bit for bit, including partition stats.
    #[test]
    fn partitioned_block_matches_per_access() {
        let (_, stream) = equivalence_streams(30_000, 0xCAFE).swap_remove(0);
        let parts: Vec<PartitionId> = (0..stream.len())
            .map(|i| PartitionId((i % 2) as u32))
            .collect();
        let run = |cache: &mut dyn PartitionedCacheModel, blocked: bool| {
            let ctx = AccessCtx::new();
            cache.set_partition_sizes(&[1536, 512]);
            if blocked {
                // Per-partition blocks: split the stream into runs of the
                // same partition, preserving order.
                let mut start = 0;
                while start < stream.len() {
                    let p = parts[start];
                    let end = (start..stream.len())
                        .find(|&i| parts[i] != p)
                        .unwrap_or(stream.len());
                    cache.access_block(p, &stream[start..end], &ctx);
                    start = end;
                }
            } else {
                for (i, &line) in stream.iter().enumerate() {
                    cache.access(parts[i], line, &ctx);
                }
            }
            (
                *cache.partition_stats(PartitionId(0)),
                *cache.partition_stats(PartitionId(1)),
            )
        };
        // Interleaving partitions access-by-access equals blocking runs
        // only when runs preserve the global order — which they do here.
        let schemes: Vec<(&str, Box<dyn Fn() -> Box<dyn PartitionedCacheModel>>)> = vec![
            (
                "way",
                Box::new(|| Box::new(WayPartitioned::new(2048, 16, 2, Lru::new(), 9))),
            ),
            (
                "set",
                Box::new(|| Box::new(SetPartitioned::new(2048, 16, 2, Lru::new(), 9))),
            ),
            (
                "vantage",
                Box::new(|| Box::new(VantageLike::new(2048, 16, 2, 9))),
            ),
            (
                "futility",
                Box::new(|| Box::new(FutilityScaled::new(2048, 16, 2, 9))),
            ),
            (
                "ideal",
                Box::new(|| Box::new(IdealPartitioned::new(2048, 2))),
            ),
        ];
        for (name, build) in schemes {
            let mut single = build();
            let mut block = build();
            assert_eq!(
                run(single.as_mut(), false),
                run(block.as_mut(), true),
                "{name} block path diverged"
            );
        }
    }

    /// `CurveSampler::record_block` produces the identical curve (every
    /// point, exactly) as per-access `record`, for static and custom
    /// dispatch alike.
    #[test]
    fn curve_sampler_block_matches_per_access() {
        let sizes: Vec<u64> = (1..=16).map(|i| i * 1024).collect();
        for (label, stream) in equivalence_streams(60_000, 0x5EED) {
            let mut single = CurveSampler::new(PolicyKind::Srrip, &sizes, 512, 16, 5);
            let mut block = CurveSampler::new(PolicyKind::Srrip, &sizes, 512, 16, 5);
            for &line in &stream {
                single.record(line);
            }
            for chunk in irregular_chunks(&stream) {
                block.record_block(chunk);
            }
            assert_eq!(single.sampled_accesses(), block.sampled_accesses());
            let (cs, cb) = (single.curve(), block.curve());
            assert_eq!(
                cs.points(),
                cb.points(),
                "sampler curves diverged on {label}"
            );
        }
    }

    /// Same for the adaptive bank, across a re-aim boundary.
    #[test]
    fn adaptive_sampler_block_matches_per_access() {
        let (_, stream) = equivalence_streams(60_000, 0xADA9).swap_remove(1);
        let mut single = AdaptiveCurveSampler::from_kind(PolicyKind::Srrip, 8, 8192, 512, 16, 3);
        let mut block = AdaptiveCurveSampler::from_kind(PolicyKind::Srrip, 8, 8192, 512, 16, 3);
        for round in 0..2 {
            for &line in &stream {
                single.record(line);
            }
            for chunk in irregular_chunks(&stream) {
                block.record_block(chunk);
            }
            assert_eq!(
                single.curve().points(),
                block.curve().points(),
                "adaptive curves diverged in round {round}"
            );
            // Interval boundary: both banks re-aim identically.
            single.reset();
            block.reset();
            assert_eq!(single.modeled_sizes(), block.modeled_sizes());
        }
    }

    /// The single-hash bank's nested-filter property: a line sampled by
    /// point *i* is sampled by every coarser-rate point *j < i*, so the
    /// record loop's first-reject early exit never skips an acceptance.
    #[test]
    fn sampler_filters_are_nested() {
        let sizes: Vec<u64> = (1..=16).map(|i| i * 1024).collect();
        let s = CurveSampler::new(PolicyKind::Lru, &sizes, 512, 16, 77);
        let ratios = s.sampling_ratios();
        assert!(ratios.windows(2).all(|w| w[0] <= w[1]), "{ratios:?}");
        for v in 0..50_000u64 {
            let line = LineAddr(v * 2654435761 % (1 << 30));
            for i in 1..s.num_points() {
                if s.samples(i, line) {
                    assert!(
                        s.samples(i - 1, line),
                        "line {line:?} sampled at point {i} but not {}",
                        i - 1
                    );
                }
            }
        }
    }
}
