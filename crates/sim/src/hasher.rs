//! H3 universal hashing (Carter & Wegman), used for set indexing, set
//! sampling, and Talus's shadow-partition sampling function.
//!
//! The paper's implementation (§VI-B) hashes each incoming address with an
//! inexpensive H3 hash and compares the result to an 8-bit limit register
//! to steer accesses between the α and β shadow partitions. H3 computes
//! each output bit as the parity of the input ANDed with a random mask,
//! which in software reduces to XOR-folding `mask & input`.

use crate::addr::LineAddr;

/// An H3 hash function over 64-bit inputs producing up to 64 output bits.
///
/// Each output bit *i* is `parity(input & mask[i])`, with masks drawn from
/// a seeded xorshift generator, making the family universal and every
/// instance cheap and deterministic.
///
/// H3 is linear over GF(2), so the per-bit mask-and-parity network can be
/// evaluated as eight byte-indexed table lookups (the classic tabulation
/// form): `hash(v) = T0[v₀] ⊕ T1[v₁] ⊕ … ⊕ T7[v₇]`, where `Tj[b]` packs
/// the parity contribution of input byte `j = b` to every output bit.
/// [`hash`](Self::hash) uses the tables; the mask formulation is kept as
/// the reference the tabulation is tested against.
///
/// # Examples
///
/// ```
/// use talus_sim::H3Hasher;
/// let h = H3Hasher::new(16, 0xFEED);
/// let a = h.hash(0x12345);
/// assert!(a < (1 << 16));
/// assert_eq!(a, h.hash(0x12345)); // deterministic
/// ```
#[derive(Clone)]
pub struct H3Hasher {
    masks: Vec<u64>,
    /// `tables[j][b]`: XOR-contribution of input byte `j` having value `b`.
    tables: Box<[[u64; 256]; 8]>,
}

impl std::fmt::Debug for H3Hasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The 16 KB lookup tables are derived state; don't dump them.
        f.debug_struct("H3Hasher")
            .field("masks", &self.masks)
            .finish_non_exhaustive()
    }
}

impl H3Hasher {
    /// Creates an H3 hash with `bits` output bits (1..=64) seeded
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    pub fn new(bits: u32, seed: u64) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "H3 output width must be 1..=64 bits"
        );
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut masks = Vec::with_capacity(bits as usize);
        for _ in 0..bits {
            // xorshift64* for mask generation.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let mask = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            // A zero mask would make an output bit constant; extremely
            // unlikely, but guard anyway.
            masks.push(if mask == 0 {
                0xDEAD_BEEF_CAFE_F00D
            } else {
                mask
            });
        }
        // Column c: the packed output word produced by input bit c alone
        // (output bit i is set iff mask[i] has bit c). Each table entry is
        // then the XOR of the columns of its byte's set bits.
        let mut columns = [0u64; 64];
        for (i, &mask) in masks.iter().enumerate() {
            for (c, col) in columns.iter_mut().enumerate() {
                *col |= ((mask >> c) & 1) << i;
            }
        }
        let mut tables = Box::new([[0u64; 256]; 8]);
        for (j, table) in tables.iter_mut().enumerate() {
            for (b, entry) in table.iter_mut().enumerate() {
                let mut acc = 0u64;
                let mut rest = b;
                while rest != 0 {
                    let k = rest.trailing_zeros() as usize;
                    acc ^= columns[8 * j + k];
                    rest &= rest - 1;
                }
                *entry = acc;
            }
        }
        H3Hasher { masks, tables }
    }

    /// Hashes a 64-bit value to `bits` output bits.
    #[inline]
    pub fn hash(&self, value: u64) -> u64 {
        let t = &self.tables;
        t[0][(value & 0xFF) as usize]
            ^ t[1][((value >> 8) & 0xFF) as usize]
            ^ t[2][((value >> 16) & 0xFF) as usize]
            ^ t[3][((value >> 24) & 0xFF) as usize]
            ^ t[4][((value >> 32) & 0xFF) as usize]
            ^ t[5][((value >> 40) & 0xFF) as usize]
            ^ t[6][((value >> 48) & 0xFF) as usize]
            ^ t[7][(value >> 56) as usize]
    }

    /// The mask-and-parity reference formulation (what the hardware
    /// network computes gate by gate). [`hash`](Self::hash) is the
    /// tabulated equivalent; tests assert they agree bit for bit.
    pub fn hash_reference(&self, value: u64) -> u64 {
        let mut out = 0u64;
        for (i, &mask) in self.masks.iter().enumerate() {
            let parity = (value & mask).count_ones() as u64 & 1;
            out |= parity << i;
        }
        out
    }

    /// Hashes a line address.
    #[inline]
    pub fn hash_line(&self, line: LineAddr) -> u64 {
        self.hash(line.value())
    }

    /// Number of output bits.
    pub fn bits(&self) -> u32 {
        self.masks.len() as u32
    }
}

// H3 is the *hardware-faithful* hash — a mask-and-parity network cheap in
// gates but, in software, a loop of table lookups. Monitors on the
// software hot path (the Mattson `last_seen` map, the SHARDS-style
// sampling filter of `SampledMattson`) instead use `mix64`, the
// three-multiply avalanche mix. It is pure integer math, so it lives in
// `talus-core` (where `talus-serve`'s shard router can reach it without
// pulling in the simulator); the re-export keeps `talus_sim::mix64` and
// every monitor call site working unchanged.
pub use talus_core::mix64;

/// A [`std::hash::BuildHasher`] over [`mix64`] for `HashMap`s keyed by
/// line addresses (or any small integer key).
///
/// The standard library's default SipHash is DoS-resistant but costs tens
/// of nanoseconds per lookup — a large fraction of a monitor's per-access
/// budget. Simulated addresses are not attacker-controlled, so the
/// monitors trade that resistance for speed.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use talus_sim::{LineAddr, LineHashBuilder};
/// let mut m: HashMap<LineAddr, u32, LineHashBuilder> = HashMap::default();
/// m.insert(LineAddr(7), 1);
/// assert_eq!(m[&LineAddr(7)], 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LineHashBuilder;

impl std::hash::BuildHasher for LineHashBuilder {
    type Hasher = LineHasher;

    fn build_hasher(&self) -> LineHasher {
        LineHasher(0)
    }
}

/// The streaming hasher behind [`LineHashBuilder`]: folds written words
/// through [`mix64`].
#[derive(Debug, Clone, Copy)]
pub struct LineHasher(u64);

impl std::hash::Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (string keys etc.): fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix64(self.0, u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, value: u64) {
        // The hot path: `LineAddr`'s derived Hash is a single u64 write.
        self.0 = mix64(self.0, value);
    }

    fn write_u32(&mut self, value: u32) {
        self.0 = mix64(self.0, u64::from(value));
    }

    fn write_usize(&mut self, value: usize) {
        self.0 = mix64(self.0, value as u64);
    }
}

/// The shadow-partition sampling function from the paper's Fig. 7b: an
/// 8-bit H3 hash plus an 8-bit limit register. Addresses hashing below the
/// limit go to the α partition; the rest go to β.
///
/// `limit = round(ρ · 256)`, so the α partition receives a `ρ` fraction of
/// the (statistically self-similar) access stream.
///
/// # Examples
///
/// ```
/// use talus_sim::{LineAddr, ShadowSampler};
/// let mut s = ShadowSampler::new(42);
/// s.set_rate(1.0 / 3.0);
/// let frac = (0..30_000u64)
///     .filter(|&i| s.goes_to_alpha(LineAddr(i * 7919)))
///     .count() as f64
///     / 30_000.0;
/// assert!((frac - 1.0 / 3.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct ShadowSampler {
    hasher: H3Hasher,
    /// Exclusive upper bound in [0, 256]: hash < limit → α partition.
    limit: u16,
}

impl ShadowSampler {
    /// Creates a sampler with rate 0 (everything to β) seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        ShadowSampler {
            hasher: H3Hasher::new(8, seed),
            limit: 0,
        }
    }

    /// Sets the α sampling rate. The rate is quantised to 1/256 steps, as
    /// in the 8-bit hardware limit register.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `[0, 1]`.
    pub fn set_rate(&mut self, rho: f64) {
        assert!(
            (0.0..=1.0).contains(&rho),
            "sampling rate must be in [0, 1], got {rho}"
        );
        self.limit = (rho * 256.0).round() as u16;
    }

    /// The quantised sampling rate actually in effect.
    pub fn rate(&self) -> f64 {
        f64::from(self.limit) / 256.0
    }

    /// Whether this line is steered to the α shadow partition.
    pub fn goes_to_alpha(&self, line: LineAddr) -> bool {
        (self.hasher.hash_line(line) as u16) < self.limit
    }
}

/// A hash-based set-sampling filter, as used by UMONs: accepts a
/// deterministic pseudo-random `1/ratio` fraction of lines.
#[derive(Debug, Clone)]
pub struct SampleFilter {
    hasher: H3Hasher,
    ratio: u64,
}

impl SampleFilter {
    /// Creates a filter accepting roughly one in `ratio` lines.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    pub fn new(ratio: u64, seed: u64) -> Self {
        assert!(ratio > 0, "sampling ratio must be positive");
        SampleFilter {
            hasher: H3Hasher::new(32, seed),
            ratio,
        }
    }

    /// Whether this line is in the sample.
    pub fn accepts(&self, line: LineAddr) -> bool {
        self.ratio == 1 || self.hasher.hash_line(line).is_multiple_of(self.ratio)
    }

    /// The configured ratio (the filter accepts ~1/ratio of lines).
    pub fn ratio(&self) -> u64 {
        self.ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "H3 output width")]
    fn h3_rejects_zero_bits() {
        H3Hasher::new(0, 1);
    }

    #[test]
    fn h3_is_deterministic_per_seed() {
        let a = H3Hasher::new(16, 7);
        let b = H3Hasher::new(16, 7);
        let c = H3Hasher::new(16, 8);
        assert_eq!(a.hash(123456), b.hash(123456));
        // Different seeds should (overwhelmingly) disagree somewhere.
        assert!((0..64u64).any(|v| a.hash(v) != c.hash(v)));
    }

    #[test]
    fn h3_output_fits_in_bits() {
        let h = H3Hasher::new(5, 3);
        assert_eq!(h.bits(), 5);
        for v in 0..1000u64 {
            assert!(h.hash(v * 64 + 1) < 32);
        }
    }

    #[test]
    fn h3_tabulation_matches_mask_reference() {
        // The table form must reproduce the mask-and-parity network bit
        // for bit — including at the byte boundaries the tables slice on.
        for (bits, seed) in [(1u32, 3u64), (8, 7), (32, 42), (64, 0xFEED)] {
            let h = H3Hasher::new(bits, seed);
            let mut v = 0x0123_4567_89AB_CDEFu64;
            for _ in 0..2000 {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                assert_eq!(h.hash(v), h.hash_reference(v), "bits {bits} value {v:#x}");
            }
            for edge in [0, 1, 0xFF, 0x100, u64::MAX, u64::MAX - 1, 1 << 63] {
                assert_eq!(h.hash(edge), h.hash_reference(edge));
            }
        }
    }

    #[test]
    fn h3_spreads_sequential_addresses() {
        // Sequential lines must not all land in one bucket.
        let h = H3Hasher::new(8, 42);
        let mut counts = [0u32; 256];
        for v in 0..25_600u64 {
            counts[h.hash(v) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Expect ~100 per bucket; allow generous slack.
        assert!(max < 200, "max bucket {max}");
        assert!(min > 30, "min bucket {min}");
    }

    #[test]
    fn shadow_sampler_rate_zero_and_one() {
        let mut s = ShadowSampler::new(1);
        s.set_rate(0.0);
        assert!((0..1000u64).all(|i| !s.goes_to_alpha(LineAddr(i))));
        s.set_rate(1.0);
        assert!((0..1000u64).all(|i| s.goes_to_alpha(LineAddr(i))));
    }

    #[test]
    fn shadow_sampler_quantises_to_8_bits() {
        let mut s = ShadowSampler::new(1);
        s.set_rate(1.0 / 3.0);
        assert!((s.rate() - 85.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn shadow_sampler_rejects_bad_rate() {
        ShadowSampler::new(1).set_rate(1.5);
    }

    #[test]
    fn shadow_sampler_is_by_address() {
        // The same address always goes to the same partition — the property
        // Assumption 3 needs (sampling by address, not by time).
        let mut s = ShadowSampler::new(9);
        s.set_rate(0.5);
        let first: Vec<bool> = (0..500u64).map(|i| s.goes_to_alpha(LineAddr(i))).collect();
        let second: Vec<bool> = (0..500u64).map(|i| s.goes_to_alpha(LineAddr(i))).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn mix64_spreads_sequential_values() {
        // Sequential line numbers must fill buckets evenly, like H3.
        let mut counts = [0u32; 256];
        for v in 0..25_600u64 {
            counts[(mix64(7, v) >> 56) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 200, "max bucket {max}");
        assert!(min > 30, "min bucket {min}");
    }

    #[test]
    fn line_hash_builder_works_in_hashmap() {
        use std::collections::HashMap;
        let mut m: HashMap<LineAddr, u64, LineHashBuilder> = HashMap::default();
        for i in 0..1000u64 {
            m.insert(LineAddr(i), i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&LineAddr(i)], i * 2);
        }
        assert!(!m.contains_key(&LineAddr(1000)));
    }

    #[test]
    fn sample_filter_rate_is_roughly_correct() {
        let f = SampleFilter::new(16, 5);
        let n = 100_000u64;
        let hits = (0..n).filter(|&i| f.accepts(LineAddr(i))).count() as f64;
        let frac = hits / n as f64;
        assert!((frac - 1.0 / 16.0).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn sample_filter_ratio_one_accepts_all() {
        let f = SampleFilter::new(1, 5);
        assert!((0..100u64).all(|i| f.accepts(LineAddr(i))));
        assert_eq!(f.ratio(), 1);
    }

    #[test]
    #[should_panic(expected = "sampling ratio")]
    fn sample_filter_rejects_zero_ratio() {
        SampleFilter::new(0, 1);
    }
}
