//! Hardware overhead accounting (paper §VI-D).
//!
//! Talus's additions over a baseline partitioned cache are: doubled
//! partition count (one extra tag bit per line plus per-partition state in
//! Vantage-style schemes), one 8-bit H3 hash and 8-bit limit register per
//! logical partition, and monitor storage (a conventional UMON plus the
//! sparser large-coverage UMON). The paper totals 24.2 KB — 0.3% of an
//! 8 MB LLC — for an 8-core system; this module reproduces that accounting
//! so experiments can report overheads for arbitrary configurations.

use crate::addr::LINE_BYTES;

/// Bits of Vantage-style per-partition state (paper: 256 bits/partition).
const VANTAGE_PARTITION_STATE_BITS: u64 = 256;
/// Monitor tag width (paper: 32-bit tags).
const MONITOR_TAG_BITS: u64 = 32;
/// Conventional UMON entries per core (paper: 1K lines).
const UMON_ENTRIES: u64 = 1024;
/// Sampled (large-coverage) UMON entries per core (paper: 16 ways × 16
/// sets = 256 entries = 1 KB of 32-bit tags).
const SAMPLED_UMON_ENTRIES: u64 = 256;

/// A hardware overhead breakdown, all in bytes. Follows the paper's
/// accounting: only *Talus-specific* state counts toward the total — the
/// conventional UMONs (reported separately) are presumed present in any
/// partitioned system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Extra partition-id tag bit(s) per cache line from doubling the
    /// partition count.
    pub tag_bits_bytes: u64,
    /// Vantage-style per-partition state for the added shadow partitions.
    pub partition_state_bytes: u64,
    /// Sampling functions: 8-bit hash + 8-bit limit per logical partition.
    pub sampler_bytes: u64,
    /// Talus-specific monitor state: the sparsely-sampled large-coverage
    /// UMON (1 KB/core) that extends curves past the LLC size.
    pub monitor_bytes: u64,
    /// Conventional UMON storage (4 KB/core) — *not* Talus-specific, not
    /// counted in [`total_bytes`](Self::total_bytes).
    pub baseline_monitor_bytes: u64,
}

impl OverheadReport {
    /// Computes the overhead of Talus on a Vantage-style LLC.
    ///
    /// `llc_lines` is the shared LLC capacity in lines; `cores` the number
    /// of cores (= logical partitions, each with a monitor pair).
    pub fn vantage(llc_lines: u64, cores: u64) -> Self {
        // Doubling partitions costs one extra bit per line tag (partition
        // ids get one bit wider).
        let tag_bits_bytes = llc_lines / 8;
        // One extra shadow partition's state per logical partition.
        let partition_state_bytes = cores * VANTAGE_PARTITION_STATE_BITS / 8;
        // H3 masks (8 × 8-bit treated as 8 bytes) + 1-byte limit register.
        let sampler_bytes = cores * (8 + 1);
        // Talus-specific: the extra sampled UMON plus its way counters.
        let monitor_bytes = cores * (SAMPLED_UMON_ENTRIES * MONITOR_TAG_BITS / 8 + 16 * 4);
        let baseline_monitor_bytes = cores * (UMON_ENTRIES * MONITOR_TAG_BITS / 8 + 64 * 4);
        OverheadReport {
            tag_bits_bytes,
            partition_state_bytes,
            sampler_bytes,
            monitor_bytes,
            baseline_monitor_bytes,
        }
    }

    /// Total overhead in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.tag_bits_bytes + self.partition_state_bytes + self.sampler_bytes + self.monitor_bytes
    }

    /// Overhead as a fraction of the LLC's data capacity.
    pub fn fraction_of_llc(&self, llc_lines: u64) -> f64 {
        self.total_bytes() as f64 / (llc_lines * LINE_BYTES) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::mb_to_lines;

    #[test]
    fn paper_configuration_is_small() {
        // 8-core system, 8 MB LLC: paper reports 24.2 KB ≈ 0.3% of LLC.
        let lines = mb_to_lines(8.0);
        let r = OverheadReport::vantage(lines, 8);
        let kb = r.total_bytes() as f64 / 1024.0;
        assert!(kb > 20.0 && kb < 30.0, "total {kb:.1} KB (paper: 24.2)");
        let frac = r.fraction_of_llc(lines);
        assert!(frac < 0.005, "fraction {frac:.4} (paper: 0.003)");
    }

    #[test]
    fn tag_bits_dominate_talus_specific_state() {
        // Paper breakdown: the extra tag bit per line (16 KB at 8 MB) is
        // the biggest Talus-specific component.
        let lines = mb_to_lines(8.0);
        let r = OverheadReport::vantage(lines, 8);
        assert!(r.tag_bits_bytes > r.monitor_bytes);
        assert!(r.monitor_bytes > r.partition_state_bytes);
        assert!(r.monitor_bytes > r.sampler_bytes);
        // Conventional monitors are bigger but not Talus-specific.
        assert!(r.baseline_monitor_bytes > r.monitor_bytes);
    }

    #[test]
    fn overhead_scales_with_cores() {
        let lines = mb_to_lines(8.0);
        let r8 = OverheadReport::vantage(lines, 8);
        let r1 = OverheadReport::vantage(lines, 1);
        assert!(r8.monitor_bytes == 8 * r1.monitor_bytes);
        assert!(r8.total_bytes() > r1.total_bytes());
    }
}
