//! Monitor-fed curve sources: the bridge from simulated hardware to the
//! [`CurveSource`] seam.

use crate::addr::LineAddr;
use crate::monitor::Monitor;
use talus_core::{CurveSource, MissCurve};

/// Drives an address stream through a [`Monitor`] and yields one curve
/// estimate per monitoring interval.
///
/// This is the producer the online layers consume: each call to
/// [`next_curve`](CurveSource::next_curve) records `interval` accesses
/// (pulled from the stream closure) into the monitor and returns its
/// updated curve. By default estimates are *cumulative* — the monitor
/// keeps accumulating, as the paper's utility monitors do between resets;
/// [`per_interval`](MonitorSource::per_interval) resets the monitor after
/// every sample instead, yielding independent interval curves.
///
/// The stream is any `FnMut() -> LineAddr`, so a `talus-workloads`
/// generator, a recorded trace iterator, or a hand-rolled closure all fit
/// without this crate knowing about them.
///
/// Ingest is batched: the source buffers 256 addresses at a time
/// and feeds them through [`Monitor::record_block`], so block-aware
/// monitors ([`SampledMattson`](crate::monitor::SampledMattson),
/// [`MattsonMonitor`](crate::monitor::MattsonMonitor)) get their
/// amortized path on every layer built on this source — the experiment
/// sweeps and `talus-serve`'s replay/driver included.
#[derive(Debug)]
pub struct MonitorSource<M, F> {
    monitor: M,
    next_line: F,
    interval: u64,
    reset_each: bool,
    /// Reused ingest buffer for the block path.
    buf: Vec<LineAddr>,
}

/// Addresses buffered per [`Monitor::record_block`] call.
const BLOCK: usize = 256;

impl<M: Monitor, F: FnMut() -> LineAddr> MonitorSource<M, F> {
    /// A cumulative source sampling `monitor` every `interval` accesses of
    /// the stream produced by `next_line`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (the source would never observe
    /// anything).
    pub fn new(monitor: M, interval: u64, next_line: F) -> Self {
        assert!(interval > 0, "monitoring interval must be positive");
        MonitorSource {
            monitor,
            next_line,
            interval,
            reset_each: false,
            buf: Vec::with_capacity(BLOCK),
        }
    }

    /// Resets the monitor after each sample, so every curve reflects one
    /// interval in isolation (the reconfiguration-loop convention).
    pub fn per_interval(mut self) -> Self {
        self.reset_each = true;
        self
    }

    /// Records `accesses` stream lines without building a curve. For
    /// consumers that read the monitor directly (e.g. evaluating on an
    /// exact grid), this skips the curve construction `next_curve` pays.
    pub fn advance(&mut self, accesses: u64) {
        let mut left = accesses;
        while left > 0 {
            let n = left.min(BLOCK as u64) as usize;
            self.buf.clear();
            self.buf.extend((0..n).map(|_| (self.next_line)()));
            self.monitor.record_block(&self.buf);
            left -= n as u64;
        }
    }

    /// Records `accesses` stream lines without emitting a curve, then
    /// clears the monitor's statistics — warmup before measurement.
    pub fn warm_up(&mut self, accesses: u64) {
        self.advance(accesses);
        self.monitor.reset();
    }

    /// The wrapped monitor.
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// Consumes the source, returning the monitor.
    pub fn into_monitor(self) -> M {
        self.monitor
    }
}

impl<M: Monitor, F: FnMut() -> LineAddr> CurveSource for MonitorSource<M, F> {
    fn next_curve(&mut self) -> Option<MissCurve> {
        self.advance(self.interval);
        let curve = self.monitor.curve();
        if self.reset_each {
            self.monitor.reset();
        }
        Some(curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MattsonMonitor;

    fn scan_source(
        lines: u64,
        interval: u64,
    ) -> MonitorSource<MattsonMonitor, impl FnMut() -> LineAddr> {
        let mut i = 0u64;
        MonitorSource::new(MattsonMonitor::new(2 * lines), interval, move || {
            i += 1;
            LineAddr(i % lines)
        })
    }

    #[test]
    fn cumulative_source_sees_the_scan_cliff() {
        let mut src = scan_source(256, 4096);
        let curve = src.next_curve().expect("monitor sources never exhaust");
        // A 256-line cyclic scan: thrashes below 256 lines, fits above.
        assert!(curve.value_at(128.0) > 0.9, "below the scan size");
        assert!(curve.value_at(300.0) < 0.1, "above the scan size");
        assert_eq!(src.monitor().sampled_accesses(), 4096);
    }

    #[test]
    fn per_interval_resets_between_samples() {
        let mut src = scan_source(64, 1024).per_interval();
        src.next_curve();
        assert_eq!(src.monitor().sampled_accesses(), 0, "reset after sample");
        src.next_curve();
        let m = src.into_monitor();
        assert_eq!(m.sampled_accesses(), 0);
    }

    #[test]
    fn warm_up_discards_statistics() {
        let mut src = scan_source(64, 512);
        src.warm_up(1000);
        assert_eq!(src.monitor().sampled_accesses(), 0);
        src.next_curve();
        assert_eq!(src.monitor().sampled_accesses(), 512);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        scan_source(64, 0);
    }

    #[test]
    fn block_ingest_counts_exactly_at_odd_intervals() {
        // Intervals that are not multiples of the ingest block must still
        // record exactly `interval` accesses per curve.
        let mut src = scan_source(64, 1000); // 1000 = 3×256 + 232
        src.next_curve();
        assert_eq!(src.monitor().sampled_accesses(), 1000);
        src.advance(300);
        assert_eq!(src.monitor().sampled_accesses(), 1300);
    }

    #[test]
    fn sampled_monitor_source_sees_the_scan_cliff() {
        use crate::monitor::SampledMattson;
        // The fast producer drops in behind the same seam: a 1/8-sampled
        // monitor still resolves a 256-line scan cliff through the source.
        let mut i = 0u64;
        let mut src = MonitorSource::new(SampledMattson::new(1024, 8, 3), 40_000, move || {
            i += 1;
            LineAddr(i % 256)
        });
        let curve = src.next_curve().expect("monitor sources never exhaust");
        assert!(curve.value_at(160.0) > 0.85, "well below the scan size");
        assert!(curve.value_at(360.0) < 0.15, "well above the scan size");
    }
}
