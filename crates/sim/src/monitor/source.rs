//! Monitor-fed curve sources: the bridge from simulated hardware to the
//! [`CurveSource`] seam.

use crate::addr::LineAddr;
use crate::monitor::Monitor;
use talus_core::{CurveSource, MissCurve};

/// Drives an address stream through a [`Monitor`] and yields one curve
/// estimate per monitoring interval.
///
/// This is the producer the online layers consume: each call to
/// [`next_curve`](CurveSource::next_curve) records `interval` accesses
/// (pulled from the stream closure) into the monitor and returns its
/// updated curve. By default estimates are *cumulative* — the monitor
/// keeps accumulating, as the paper's utility monitors do between resets;
/// [`per_interval`](MonitorSource::per_interval) resets the monitor after
/// every sample instead, yielding independent interval curves.
///
/// The stream is any `FnMut() -> LineAddr`, so a `talus-workloads`
/// generator, a recorded trace iterator, or a hand-rolled closure all fit
/// without this crate knowing about them.
#[derive(Debug)]
pub struct MonitorSource<M, F> {
    monitor: M,
    next_line: F,
    interval: u64,
    reset_each: bool,
}

impl<M: Monitor, F: FnMut() -> LineAddr> MonitorSource<M, F> {
    /// A cumulative source sampling `monitor` every `interval` accesses of
    /// the stream produced by `next_line`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (the source would never observe
    /// anything).
    pub fn new(monitor: M, interval: u64, next_line: F) -> Self {
        assert!(interval > 0, "monitoring interval must be positive");
        MonitorSource {
            monitor,
            next_line,
            interval,
            reset_each: false,
        }
    }

    /// Resets the monitor after each sample, so every curve reflects one
    /// interval in isolation (the reconfiguration-loop convention).
    pub fn per_interval(mut self) -> Self {
        self.reset_each = true;
        self
    }

    /// Records `accesses` stream lines without building a curve. For
    /// consumers that read the monitor directly (e.g. evaluating on an
    /// exact grid), this skips the curve construction `next_curve` pays.
    pub fn advance(&mut self, accesses: u64) {
        for _ in 0..accesses {
            self.monitor.record((self.next_line)());
        }
    }

    /// Records `accesses` stream lines without emitting a curve, then
    /// clears the monitor's statistics — warmup before measurement.
    pub fn warm_up(&mut self, accesses: u64) {
        self.advance(accesses);
        self.monitor.reset();
    }

    /// The wrapped monitor.
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// Consumes the source, returning the monitor.
    pub fn into_monitor(self) -> M {
        self.monitor
    }
}

impl<M: Monitor, F: FnMut() -> LineAddr> CurveSource for MonitorSource<M, F> {
    fn next_curve(&mut self) -> Option<MissCurve> {
        for _ in 0..self.interval {
            self.monitor.record((self.next_line)());
        }
        let curve = self.monitor.curve();
        if self.reset_each {
            self.monitor.reset();
        }
        Some(curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MattsonMonitor;

    fn scan_source(
        lines: u64,
        interval: u64,
    ) -> MonitorSource<MattsonMonitor, impl FnMut() -> LineAddr> {
        let mut i = 0u64;
        MonitorSource::new(MattsonMonitor::new(2 * lines), interval, move || {
            i += 1;
            LineAddr(i % lines)
        })
    }

    #[test]
    fn cumulative_source_sees_the_scan_cliff() {
        let mut src = scan_source(256, 4096);
        let curve = src.next_curve().expect("monitor sources never exhaust");
        // A 256-line cyclic scan: thrashes below 256 lines, fits above.
        assert!(curve.value_at(128.0) > 0.9, "below the scan size");
        assert!(curve.value_at(300.0) < 0.1, "above the scan size");
        assert_eq!(src.monitor().sampled_accesses(), 4096);
    }

    #[test]
    fn per_interval_resets_between_samples() {
        let mut src = scan_source(64, 1024).per_interval();
        src.next_curve();
        assert_eq!(src.monitor().sampled_accesses(), 0, "reset after sample");
        src.next_curve();
        let m = src.into_monitor();
        assert_eq!(m.sampled_accesses(), 0);
    }

    #[test]
    fn warm_up_discards_statistics() {
        let mut src = scan_source(64, 512);
        src.warm_up(1000);
        assert_eq!(src.monitor().sampled_accesses(), 0);
        src.next_curve();
        assert_eq!(src.monitor().sampled_accesses(), 512);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        scan_source(64, 0);
    }
}
