//! Miss-curve monitors.
//!
//! Talus is driven entirely by miss curves (paper §VI-C). This module
//! provides several ways to obtain them:
//!
//! - [`MattsonMonitor`]: exact LRU stack-distance profiling — the ground
//!   truth the hardware monitors are tested against;
//! - [`SampledMattson`]: SHARDS-style spatially-hash-sampled stack
//!   distances — the software analogue of the paper's §VI-C address-based
//!   sampling [11, 42], statistically matching the exact monitor at a
//!   fraction of the record cost;
//! - [`Umon`] / [`UmonPair`]: hardware-faithful utility monitors (Qureshi & Patt) —
//!   a small sampled LRU tag array with per-way hit counters, plus the
//!   paper's second, more sparsely sampled monitor that extends coverage
//!   to 4× the LLC size;
//! - [`CurveSampler`]: the brute-force multi-monitor approach the paper
//!   uses for SRRIP (one sampled monitor per curve point), applicable to
//!   any policy at proportionally higher cost;
//! - [`ThreePointMonitor`]: the CRUISE-style 3-point alternative §VI-C
//!   mentions — cheap, but too coarse and too short-sighted for Talus
//!   (see the monitor ablation);
//! - [`AdaptiveCurveSampler`]: the §VI-C *future-work* design — a small
//!   bank that re-aims its sampling rates at the hull's active region
//!   every interval, matching the fixed 64-monitor bank at a fraction of
//!   the state.
//!
//! [`MonitorSource`] adapts any of them to the `talus-core`
//! [`CurveSource`](talus_core::CurveSource) seam: it drives an address
//! stream through the monitor and emits one curve per interval, which is
//! how the experiment sweeps and the online reconfiguration service
//! ingest simulated curves.

mod adaptive;
mod mattson;
mod sampled;
mod sampler;
mod source;
mod threepoint;
mod umon;

pub use adaptive::AdaptiveCurveSampler;
pub use mattson::MattsonMonitor;
pub use sampled::SampledMattson;
pub use sampler::CurveSampler;
pub use source::MonitorSource;
pub use threepoint::ThreePointMonitor;
pub use umon::{Umon, UmonPair};

use crate::addr::LineAddr;
use talus_core::MissCurve;

/// The default 64-point evaluation grid for a monitor resolving capacities
/// up to `cap` lines: evenly spaced, clamped to `cap`, and deduplicated —
/// small caps would otherwise repeat the same few sizes and overshoot the
/// tracked range.
pub(crate) fn default_grid(cap: u64) -> Vec<u64> {
    const POINTS: u64 = 64;
    let mut grid: Vec<u64> = (1..=POINTS)
        .map(|i| ((i as u128 * cap as u128 / POINTS as u128) as u64).clamp(1, cap))
        .collect();
    grid.dedup();
    grid
}

/// A monitor that observes an access stream and produces a miss curve in
/// **misses per access** over capacities in **lines**.
pub trait Monitor {
    /// Observes one access.
    fn record(&mut self, line: LineAddr);

    /// Observes a block of accesses at once.
    ///
    /// Semantically identical to calling [`record`](Monitor::record) per
    /// line, in order — but monitors with per-access bookkeeping can
    /// amortize it across the block ([`MattsonMonitor`] hoists its
    /// compaction check, [`SampledMattson`] hash-filters the block before
    /// touching any distance state). All batch-aware producers
    /// ([`MonitorSource`], `TalusSingleCache::access_block`, the
    /// experiment sweeps, `talus-serve`'s replay path) ingest through
    /// this entry point.
    fn record_block(&mut self, lines: &[LineAddr]) {
        for &line in lines {
            self.record(line);
        }
    }

    /// The miss curve estimated from everything recorded so far.
    ///
    /// Curves always include the point `(0, miss-rate-at-zero)` so Talus
    /// can plan bypass partitions.
    fn curve(&self) -> MissCurve;

    /// Accesses observed (after any sampling filter).
    fn sampled_accesses(&self) -> u64;

    /// Forgets accumulated statistics (monitored tags may be kept).
    fn reset(&mut self);
}

impl Monitor for Box<dyn Monitor> {
    fn record(&mut self, line: LineAddr) {
        (**self).record(line)
    }

    fn record_block(&mut self, lines: &[LineAddr]) {
        (**self).record_block(lines)
    }

    fn curve(&self) -> MissCurve {
        (**self).curve()
    }

    fn sampled_accesses(&self) -> u64 {
        (**self).sampled_accesses()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::addr::LineAddr;

    /// A deterministic pseudo-random access stream over `lines` distinct
    /// lines.
    pub fn uniform_stream(lines: u64, len: usize, seed: u64) -> Vec<LineAddr> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                LineAddr((state >> 33) % lines)
            })
            .collect()
    }

    /// A cyclic scan over `lines` distinct lines.
    pub fn scan_stream(lines: u64, len: usize) -> Vec<LineAddr> {
        (0..len as u64).map(|i| LineAddr(i % lines)).collect()
    }
}
