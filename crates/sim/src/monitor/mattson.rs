//! Exact LRU stack-distance profiling (Mattson et al., 1970).
//!
//! LRU obeys the *stack property*: the contents of a size-`s` LRU cache are
//! a subset of any larger LRU cache's, so one pass that records each
//! access's *stack distance* (number of distinct lines touched since the
//! previous access to the same line) yields the exact LRU miss curve at
//! every size simultaneously: an access hits in caches of at least its
//! stack distance.
//!
//! Distances are counted with a Fenwick tree over access timestamps
//! (O(log n) per access); the timestamp window is compacted periodically so
//! memory stays proportional to the tracked capacity, with distances beyond
//! the cap folded into a "far" bucket (they miss at every tracked size).
//!
//! The distance histogram is kept two-level (flat bins plus per-block
//! sums) — an *incremental cumulative-hit cache* — so
//! [`curve`](Monitor::curve) answers each grid point with a block-skipping
//! prefix query instead of re-scanning all `cap` histogram bins per call.

use super::{default_grid, Monitor};
use crate::addr::LineAddr;
use crate::hasher::LineHashBuilder;
use std::collections::HashMap;
use talus_core::MissCurve;

/// Fenwick tree (binary indexed tree) over timestamps.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of entries in [0, i].
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn clear(&mut self) {
        self.tree.fill(0);
    }
}

/// A two-level stack-distance histogram: flat per-distance bins plus
/// per-block sums, the incremental cumulative-hit cache behind
/// [`MattsonMonitor::hits_within`]. Counting an access stays O(1) (two
/// increments, keeping the record hot path flat), while a prefix query
/// sums whole 256-bin blocks and only walks bins inside the final block —
/// O(cap/256 + 256) instead of re-scanning all `cap` bins per curve call.
#[derive(Debug, Clone)]
struct CumHist {
    /// bins[d] = accesses with stack distance exactly d (1-based).
    bins: Vec<u64>,
    /// blocks[b] = sum of bins[256b..256(b+1)].
    blocks: Vec<u64>,
}

/// Bins summarised per block (a power of two).
const HIST_BLOCK: usize = 256;

impl CumHist {
    fn new(n: usize) -> Self {
        CumHist {
            bins: vec![0; n + 1],
            blocks: vec![0; (n + 1).div_ceil(HIST_BLOCK)],
        }
    }

    /// Counts one access at distance `d` (1-based, `d <= n`).
    #[inline]
    fn add(&mut self, d: usize) {
        self.bins[d] += 1;
        self.blocks[d / HIST_BLOCK] += 1;
    }

    /// Accesses with distance in `[1, d]`.
    fn prefix(&self, d: usize) -> u64 {
        let block = d / HIST_BLOCK;
        self.blocks[..block].iter().sum::<u64>()
            + self.bins[block * HIST_BLOCK..=d].iter().sum::<u64>()
    }

    fn clear(&mut self) {
        self.bins.fill(0);
        self.blocks.fill(0);
    }
}

/// An exact stack-distance monitor for LRU, capped at a maximum tracked
/// capacity.
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{MattsonMonitor, Monitor};
/// use talus_sim::LineAddr;
/// let mut m = MattsonMonitor::new(8);
/// // A cyclic scan over 4 lines: after the cold pass, every access has
/// // stack distance 4.
/// for i in 0..400u64 {
///     m.record(LineAddr(i % 4));
/// }
/// let curve = m.curve();
/// assert!(curve.value_at(3.0) > 0.95); // smaller than the loop: ~all miss
/// assert!(curve.value_at(4.0) < 0.05); // loop fits: ~all hit
/// ```
#[derive(Debug, Clone)]
pub struct MattsonMonitor {
    /// Largest stack distance tracked exactly (in lines).
    cap: usize,
    /// Cumulative counts of accesses by stack distance (1-based).
    hist: CumHist,
    /// Accesses whose distance exceeded `cap`, plus compaction casualties.
    far: u64,
    /// First-ever touches.
    cold: u64,
    accesses: u64,
    /// Line → timestamp of most recent access.
    last_seen: HashMap<LineAddr, usize, LineHashBuilder>,
    /// Marks timestamps that are the latest access to some line.
    fenwick: Fenwick,
    now: usize,
    window: usize,
}

impl MattsonMonitor {
    /// Creates a monitor tracking stack distances up to `max_lines`.
    /// Distances beyond that are folded into a far bucket, so the produced
    /// curve is exact on `[0, max_lines]`.
    ///
    /// # Panics
    ///
    /// Panics if `max_lines` is zero.
    pub fn new(max_lines: u64) -> Self {
        assert!(max_lines > 0, "tracked capacity must be positive");
        let cap = max_lines as usize;
        let window = (4 * cap).max(1 << 12);
        MattsonMonitor {
            cap,
            hist: CumHist::new(cap),
            far: 0,
            cold: 0,
            accesses: 0,
            last_seen: HashMap::default(),
            fenwick: Fenwick::new(window),
            now: 0,
            window,
        }
    }

    /// Largest capacity (in lines) this monitor resolves exactly.
    pub fn max_lines(&self) -> u64 {
        self.cap as u64
    }

    /// Accesses recorded so far whose stack distance was at most `lines` —
    /// i.e. the hits an LRU cache of that many lines would have seen.
    pub fn hits_within(&self, lines: u64) -> u64 {
        self.hist.prefix((lines as usize).min(self.cap))
    }

    /// Produces the miss curve evaluated on an arbitrary grid of line
    /// counts (values above `max_lines` clamp to the far+cold rate).
    pub fn curve_on_grid(&self, grid: &[u64]) -> MissCurve {
        let total = self.accesses.max(1) as f64;
        let mut sizes = Vec::with_capacity(grid.len() + 1);
        let mut misses = Vec::with_capacity(grid.len() + 1);
        if grid.first().copied() != Some(0) {
            sizes.push(0.0);
            misses.push(1.0);
        }
        for &g in grid {
            let hits = self.hits_within(g);
            sizes.push(g as f64);
            misses.push((self.accesses - hits) as f64 / total);
        }
        MissCurve::from_samples(&sizes, &misses).expect("grid is sorted and rates are finite")
    }

    /// One access, with the window-compaction check already done by the
    /// caller ([`record`](Monitor::record) per access, or once per chunk on
    /// the block path).
    #[inline]
    fn record_one(&mut self, line: LineAddr) {
        self.accesses += 1;
        match self.last_seen.get(&line).copied() {
            Some(prev) => {
                // Distinct lines touched in (prev, now): each has its latest
                // access marked in the Fenwick tree after prev. The total
                // mark count is just the live-line count (every mark sits
                // below `now`), so only one prefix query is needed.
                let upto_prev = self.fenwick.prefix(prev);
                let upto_now = self.last_seen.len() as u64;
                let distance = (upto_now - upto_prev) as usize + 1; // include the line itself
                if distance <= self.cap {
                    self.hist.add(distance);
                } else {
                    self.far += 1;
                }
                self.fenwick.add(prev, -1);
            }
            None => {
                self.cold += 1;
            }
        }
        self.fenwick.add(self.now, 1);
        self.last_seen.insert(line, self.now);
        self.now += 1;
    }

    /// Compacts the timestamp window: re-indexes the most recent `cap`
    /// distinct lines to timestamps `0..k` and drops the rest (their next
    /// access would be beyond `cap` anyway).
    fn compact(&mut self) {
        let mut entries: Vec<(LineAddr, usize)> =
            self.last_seen.iter().map(|(&l, &t)| (l, t)).collect();
        entries.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        entries.truncate(self.cap);
        entries.reverse(); // oldest kept entry first
        self.last_seen.clear();
        self.fenwick.clear();
        for (i, &(line, _)) in entries.iter().enumerate() {
            self.last_seen.insert(line, i);
            self.fenwick.add(i, 1);
        }
        self.now = entries.len();
    }
}

impl Monitor for MattsonMonitor {
    fn record(&mut self, line: LineAddr) {
        if self.now >= self.window {
            self.compact();
        }
        self.record_one(line);
    }

    fn record_block(&mut self, lines: &[LineAddr]) {
        // Each record advances `now` by exactly one, so the compaction
        // check holds for a whole chunk of `window - now` accesses at a
        // time instead of being re-tested per access.
        let mut rest = lines;
        while !rest.is_empty() {
            if self.now >= self.window {
                self.compact();
            }
            let take = (self.window - self.now).min(rest.len());
            for &line in &rest[..take] {
                self.record_one(line);
            }
            rest = &rest[take..];
        }
    }

    fn curve(&self) -> MissCurve {
        // 64 evenly spaced points (clamped and deduplicated) plus 0 keep
        // curves compact without losing the knees.
        self.curve_on_grid(&default_grid(self.cap as u64))
    }

    fn sampled_accesses(&self) -> u64 {
        self.accesses
    }

    fn reset(&mut self) {
        self.hist.clear();
        self.far = 0;
        self.cold = 0;
        self.accesses = 0;
        // Keep last_seen/fenwick: the monitor stays warm across intervals.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::{scan_stream, uniform_stream};

    #[test]
    fn scan_produces_step_curve() {
        // Cyclic scan over 32 lines: misses at sizes < 32, hits at >= 32.
        let mut m = MattsonMonitor::new(64);
        for &l in &scan_stream(32, 32 * 100) {
            m.record(l);
        }
        let c = m.curve_on_grid(&(0..=64).collect::<Vec<_>>());
        assert!(c.value_at(31.0) > 0.98, "at 31: {}", c.value_at(31.0));
        assert!(c.value_at(32.0) < 0.02, "at 32: {}", c.value_at(32.0));
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut m = MattsonMonitor::new(128);
        for &l in &uniform_stream(200, 50_000, 3) {
            m.record(l);
        }
        assert!(m
            .curve_on_grid(&(0..=128).collect::<Vec<_>>())
            .is_monotone(1e-12));
    }

    #[test]
    fn matches_fully_associative_lru_exactly() {
        use crate::array::{CacheModel, FullyAssocLru};
        use crate::policy::AccessCtx;
        // The whole point of Mattson: one pass gives the same miss count an
        // actual LRU cache of each size would see.
        let stream = uniform_stream(100, 20_000, 9);
        let mut m = MattsonMonitor::new(128);
        for &l in &stream {
            m.record(l);
        }
        let curve = m.curve_on_grid(&[10, 25, 50, 75, 100]);
        for &size in &[10u64, 25, 50, 75, 100] {
            let mut cache = FullyAssocLru::new(size);
            for &l in &stream {
                cache.access(l, &AccessCtx::new());
            }
            let real = cache.stats().miss_rate();
            let est = curve.value_at(size as f64);
            assert!(
                (real - est).abs() < 1e-9,
                "size {size}: cache {real} vs mattson {est}"
            );
        }
    }

    #[test]
    fn compaction_preserves_distances() {
        // Small window forces many compactions; distances ≤ cap must stay
        // exact. Compare against a no-compaction run (big cap).
        let stream = uniform_stream(60, 30_000, 11);
        let mut small = MattsonMonitor::new(64); // window 4096 → compactions
        let mut big = MattsonMonitor::new(4096); // effectively no pressure
        for &l in &stream {
            small.record(l);
            big.record(l);
        }
        let gs: Vec<u64> = (0..=64).collect();
        let cs = small.curve_on_grid(&gs);
        let cb = big.curve_on_grid(&gs);
        for &g in &gs {
            assert!(
                (cs.value_at(g as f64) - cb.value_at(g as f64)).abs() < 1e-9,
                "divergence at {g}"
            );
        }
    }

    #[test]
    fn distances_beyond_cap_fold_into_far() {
        // Scan over 100 lines with cap 16: every warm access is far.
        let mut m = MattsonMonitor::new(16);
        for &l in &scan_stream(100, 1000) {
            m.record(l);
        }
        assert_eq!(m.far, 900);
        assert_eq!(m.cold, 100);
        let c = m.curve();
        assert!(c.value_at(16.0) > 0.99);
    }

    #[test]
    fn reset_clears_statistics_but_stays_warm() {
        let mut m = MattsonMonitor::new(32);
        for &l in &scan_stream(8, 64) {
            m.record(l);
        }
        m.reset();
        assert_eq!(m.sampled_accesses(), 0);
        // Next pass over the same lines: all warm hits at distance 8.
        for &l in &scan_stream(8, 16) {
            m.record(l);
        }
        let c = m.curve_on_grid(&[0, 4, 8, 16]);
        assert!(c.value_at(8.0) < 0.01);
    }

    #[test]
    fn immediate_reuse_has_distance_one() {
        let mut m = MattsonMonitor::new(8);
        m.record(LineAddr(1));
        m.record(LineAddr(1));
        assert_eq!(m.hits_within(1), 1);
        let c = m.curve_on_grid(&[0, 1, 2]);
        assert!((c.value_at(1.0) - 0.5).abs() < 1e-9); // 1 cold miss, 1 hit
    }

    #[test]
    fn small_cap_default_grid_reaches_cap_without_overshoot() {
        // cap < 64 used to repeat the same few sizes and overshoot `cap`
        // (step = max(cap/64, 1) walked to 64 regardless); the grid must
        // stay within [1, cap] and end exactly at cap.
        for cap in [1u64, 3, 7, 20, 63, 64, 65, 100] {
            let mut m = MattsonMonitor::new(cap);
            for &l in &scan_stream(4, 64) {
                m.record(l);
            }
            let c = m.curve();
            assert_eq!(c.min_size(), 0.0);
            assert_eq!(c.max_size(), cap as f64, "grid must end at cap {cap}");
        }
        // And the grid itself is strictly increasing (deduplicated).
        let g = crate::monitor::default_grid(20);
        assert!(g.windows(2).all(|w| w[0] < w[1]), "duplicates in {g:?}");
        assert_eq!(g.first(), Some(&1));
        assert_eq!(g.last(), Some(&20));
    }

    #[test]
    fn record_block_is_equivalent_to_per_access() {
        // Small window forces compactions inside the block path too.
        let stream = uniform_stream(200, 30_000, 5);
        let mut one = MattsonMonitor::new(64);
        let mut block = MattsonMonitor::new(64);
        for &l in &stream {
            one.record(l);
        }
        for chunk in stream.chunks(777) {
            block.record_block(chunk);
        }
        assert_eq!(one.sampled_accesses(), block.sampled_accesses());
        assert_eq!(one.far, block.far);
        assert_eq!(one.cold, block.cold);
        let grid: Vec<u64> = (0..=64).collect();
        for &g in &grid {
            assert_eq!(one.hits_within(g), block.hits_within(g), "at {g}");
        }
    }

    #[test]
    fn curve_includes_origin() {
        let mut m = MattsonMonitor::new(8);
        m.record(LineAddr(1));
        let c = m.curve();
        assert_eq!(c.min_size(), 0.0);
        assert_eq!(c.value_at(0.0), 1.0);
    }
}
