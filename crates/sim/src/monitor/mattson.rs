//! Exact LRU stack-distance profiling (Mattson et al., 1970).
//!
//! LRU obeys the *stack property*: the contents of a size-`s` LRU cache are
//! a subset of any larger LRU cache's, so one pass that records each
//! access's *stack distance* (number of distinct lines touched since the
//! previous access to the same line) yields the exact LRU miss curve at
//! every size simultaneously: an access hits in caches of at least its
//! stack distance.
//!
//! Distances are counted with a Fenwick tree over access timestamps
//! (O(log n) per access); the timestamp window is compacted periodically so
//! memory stays proportional to the tracked capacity, with distances beyond
//! the cap folded into a "far" bucket (they miss at every tracked size).

use super::Monitor;
use crate::addr::LineAddr;
use std::collections::HashMap;
use talus_core::MissCurve;

/// Fenwick tree (binary indexed tree) over timestamps.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of entries in [0, i].
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn clear(&mut self) {
        self.tree.fill(0);
    }
}

/// An exact stack-distance monitor for LRU, capped at a maximum tracked
/// capacity.
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{MattsonMonitor, Monitor};
/// use talus_sim::LineAddr;
/// let mut m = MattsonMonitor::new(8);
/// // A cyclic scan over 4 lines: after the cold pass, every access has
/// // stack distance 4.
/// for i in 0..400u64 {
///     m.record(LineAddr(i % 4));
/// }
/// let curve = m.curve();
/// assert!(curve.value_at(3.0) > 0.95); // smaller than the loop: ~all miss
/// assert!(curve.value_at(4.0) < 0.05); // loop fits: ~all hit
/// ```
#[derive(Debug, Clone)]
pub struct MattsonMonitor {
    /// Largest stack distance tracked exactly (in lines).
    cap: usize,
    /// hist[d] = accesses with stack distance exactly d (1-based).
    hist: Vec<u64>,
    /// Accesses whose distance exceeded `cap`, plus compaction casualties.
    far: u64,
    /// First-ever touches.
    cold: u64,
    accesses: u64,
    /// Line → timestamp of most recent access.
    last_seen: HashMap<LineAddr, usize>,
    /// Marks timestamps that are the latest access to some line.
    fenwick: Fenwick,
    now: usize,
    window: usize,
}

impl MattsonMonitor {
    /// Creates a monitor tracking stack distances up to `max_lines`.
    /// Distances beyond that are folded into a far bucket, so the produced
    /// curve is exact on `[0, max_lines]`.
    ///
    /// # Panics
    ///
    /// Panics if `max_lines` is zero.
    pub fn new(max_lines: u64) -> Self {
        assert!(max_lines > 0, "tracked capacity must be positive");
        let cap = max_lines as usize;
        let window = (4 * cap).max(1 << 12);
        MattsonMonitor {
            cap,
            hist: vec![0; cap + 1],
            far: 0,
            cold: 0,
            accesses: 0,
            last_seen: HashMap::new(),
            fenwick: Fenwick::new(window),
            now: 0,
            window,
        }
    }

    /// Largest capacity (in lines) this monitor resolves exactly.
    pub fn max_lines(&self) -> u64 {
        self.cap as u64
    }

    /// Produces the miss curve evaluated on an arbitrary grid of line
    /// counts (values above `max_lines` clamp to the far+cold rate).
    pub fn curve_on_grid(&self, grid: &[u64]) -> MissCurve {
        let total = self.accesses.max(1) as f64;
        // Cumulative hits by distance.
        let mut cum = vec![0u64; self.cap + 1];
        for d in 1..=self.cap {
            cum[d] = cum[d - 1] + self.hist[d];
        }
        let mut sizes = Vec::with_capacity(grid.len() + 1);
        let mut misses = Vec::with_capacity(grid.len() + 1);
        if grid.first().copied() != Some(0) {
            sizes.push(0.0);
            misses.push(1.0);
        }
        for &g in grid {
            let hits = cum[(g as usize).min(self.cap)];
            sizes.push(g as f64);
            misses.push((self.accesses - hits) as f64 / total);
        }
        MissCurve::from_samples(&sizes, &misses).expect("grid is sorted and rates are finite")
    }

    /// Compacts the timestamp window: re-indexes the most recent `cap`
    /// distinct lines to timestamps `0..k` and drops the rest (their next
    /// access would be beyond `cap` anyway).
    fn compact(&mut self) {
        let mut entries: Vec<(LineAddr, usize)> =
            self.last_seen.iter().map(|(&l, &t)| (l, t)).collect();
        entries.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        entries.truncate(self.cap);
        entries.reverse(); // oldest kept entry first
        self.last_seen.clear();
        self.fenwick.clear();
        for (i, &(line, _)) in entries.iter().enumerate() {
            self.last_seen.insert(line, i);
            self.fenwick.add(i, 1);
        }
        self.now = entries.len();
    }
}

impl Monitor for MattsonMonitor {
    fn record(&mut self, line: LineAddr) {
        if self.now >= self.window {
            self.compact();
        }
        self.accesses += 1;
        match self.last_seen.get(&line).copied() {
            Some(prev) => {
                // Distinct lines touched in (prev, now): each has its latest
                // access marked in the Fenwick tree after prev.
                let upto_prev = self.fenwick.prefix(prev);
                let upto_now = if self.now == 0 {
                    0
                } else {
                    self.fenwick.prefix(self.now - 1)
                };
                let distance = (upto_now - upto_prev) as usize + 1; // include the line itself
                if distance <= self.cap {
                    self.hist[distance] += 1;
                } else {
                    self.far += 1;
                }
                self.fenwick.add(prev, -1);
            }
            None => {
                self.cold += 1;
            }
        }
        self.fenwick.add(self.now, 1);
        self.last_seen.insert(line, self.now);
        self.now += 1;
    }

    fn curve(&self) -> MissCurve {
        // Default grid: every power-of-two-ish step keeps curves compact
        // without losing the knees; use 64 evenly spaced points plus 0.
        let points = 64usize;
        let step = (self.cap / points).max(1);
        let grid: Vec<u64> = (1..=points).map(|i| (i * step) as u64).collect();
        self.curve_on_grid(&grid)
    }

    fn sampled_accesses(&self) -> u64 {
        self.accesses
    }

    fn reset(&mut self) {
        self.hist.fill(0);
        self.far = 0;
        self.cold = 0;
        self.accesses = 0;
        // Keep last_seen/fenwick: the monitor stays warm across intervals.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::{scan_stream, uniform_stream};

    #[test]
    fn scan_produces_step_curve() {
        // Cyclic scan over 32 lines: misses at sizes < 32, hits at >= 32.
        let mut m = MattsonMonitor::new(64);
        for &l in &scan_stream(32, 32 * 100) {
            m.record(l);
        }
        let c = m.curve_on_grid(&(0..=64).collect::<Vec<_>>());
        assert!(c.value_at(31.0) > 0.98, "at 31: {}", c.value_at(31.0));
        assert!(c.value_at(32.0) < 0.02, "at 32: {}", c.value_at(32.0));
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut m = MattsonMonitor::new(128);
        for &l in &uniform_stream(200, 50_000, 3) {
            m.record(l);
        }
        assert!(m
            .curve_on_grid(&(0..=128).collect::<Vec<_>>())
            .is_monotone(1e-12));
    }

    #[test]
    fn matches_fully_associative_lru_exactly() {
        use crate::array::{CacheModel, FullyAssocLru};
        use crate::policy::AccessCtx;
        // The whole point of Mattson: one pass gives the same miss count an
        // actual LRU cache of each size would see.
        let stream = uniform_stream(100, 20_000, 9);
        let mut m = MattsonMonitor::new(128);
        for &l in &stream {
            m.record(l);
        }
        let curve = m.curve_on_grid(&[10, 25, 50, 75, 100]);
        for &size in &[10u64, 25, 50, 75, 100] {
            let mut cache = FullyAssocLru::new(size);
            for &l in &stream {
                cache.access(l, &AccessCtx::new());
            }
            let real = cache.stats().miss_rate();
            let est = curve.value_at(size as f64);
            assert!(
                (real - est).abs() < 1e-9,
                "size {size}: cache {real} vs mattson {est}"
            );
        }
    }

    #[test]
    fn compaction_preserves_distances() {
        // Small window forces many compactions; distances ≤ cap must stay
        // exact. Compare against a no-compaction run (big cap).
        let stream = uniform_stream(60, 30_000, 11);
        let mut small = MattsonMonitor::new(64); // window 4096 → compactions
        let mut big = MattsonMonitor::new(4096); // effectively no pressure
        for &l in &stream {
            small.record(l);
            big.record(l);
        }
        let gs: Vec<u64> = (0..=64).collect();
        let cs = small.curve_on_grid(&gs);
        let cb = big.curve_on_grid(&gs);
        for &g in &gs {
            assert!(
                (cs.value_at(g as f64) - cb.value_at(g as f64)).abs() < 1e-9,
                "divergence at {g}"
            );
        }
    }

    #[test]
    fn distances_beyond_cap_fold_into_far() {
        // Scan over 100 lines with cap 16: every warm access is far.
        let mut m = MattsonMonitor::new(16);
        for &l in &scan_stream(100, 1000) {
            m.record(l);
        }
        assert_eq!(m.far, 900);
        assert_eq!(m.cold, 100);
        let c = m.curve();
        assert!(c.value_at(16.0) > 0.99);
    }

    #[test]
    fn reset_clears_statistics_but_stays_warm() {
        let mut m = MattsonMonitor::new(32);
        for &l in &scan_stream(8, 64) {
            m.record(l);
        }
        m.reset();
        assert_eq!(m.sampled_accesses(), 0);
        // Next pass over the same lines: all warm hits at distance 8.
        for &l in &scan_stream(8, 16) {
            m.record(l);
        }
        let c = m.curve_on_grid(&[0, 4, 8, 16]);
        assert!(c.value_at(8.0) < 0.01);
    }

    #[test]
    fn immediate_reuse_has_distance_one() {
        let mut m = MattsonMonitor::new(8);
        m.record(LineAddr(1));
        m.record(LineAddr(1));
        assert_eq!(m.hist[1], 1);
        let c = m.curve_on_grid(&[0, 1, 2]);
        assert!((c.value_at(1.0) - 0.5).abs() < 1e-9); // 1 cold miss, 1 hit
    }

    #[test]
    fn curve_includes_origin() {
        let mut m = MattsonMonitor::new(8);
        m.record(LineAddr(1));
        let c = m.curve();
        assert_eq!(c.min_size(), 0.0);
        assert_eq!(c.value_at(0.0), 1.0);
    }
}
