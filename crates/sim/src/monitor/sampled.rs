//! SHARDS-style spatially-hashed sampled stack-distance profiling.
//!
//! [`MattsonMonitor`](super::MattsonMonitor) is exact but pays a hash-map
//! lookup plus two Fenwick prefix sums for *every* access — the slowest
//! component in the workspace (`monitor_record/mattson_exact` in
//! `results/bench_baseline.json`). The paper's §VI-C hardware monitors
//! avoid exactly this cost by sampling the address stream; SHARDS
//! (Waldspurger et al., FAST 2015) showed the same trade works in
//! software: filter lines by a *spatial hash* (`hash(addr) < threshold`),
//! run the Mattson pass only on the surviving ~`1/R` of the stream, and
//! rescale the measured distances back up — by the *realized* inverse
//! sampling rate, the SHARDS-adj-style correction. Because the filter is
//! by address, a sampled line's reuses are all observed, and the number
//! of *distinct sampled lines* between them is an unbiased `1/R`-scale
//! estimate of the true stack distance.
//!
//! [`SampledMattson`] implements that design with flat, cache-friendly
//! state instead of the exact monitor's per-access Fenwick prefix sums:
//!
//! - an open-addressing `last_seen` table (linear probing, power-of-two
//!   sizing) from sampled line → timestamp;
//! - a timestamp *occupancy bitmap* with per-block popcount summaries —
//!   distance queries count the live bits between two timestamps,
//!   skipping whole 512-timestamp blocks at a time;
//! - a log-bucketed distance histogram: exact bins up to 256, then 32
//!   bins per octave, so curve extraction touches a few hundred buckets
//!   regardless of capacity.
//!
//! The resulting curves converge statistically on the exact monitor's
//! (see the L∞ accuracy tests here and in `tests/properties.rs`) at a
//! small fraction of the record cost — the software analogue of the
//! paper's "address-based sampling reduces monitoring overheads" [11, 42].

use super::{default_grid, Monitor};
use crate::addr::LineAddr;
use crate::hasher::mix64;
use std::cell::RefCell;
use talus_core::MissCurve;

/// Empty-slot sentinel in the open-addressing table.
const EMPTY: u32 = u32::MAX;

/// Flat open-addressing map from sampled line → most recent timestamp.
///
/// Linear probing over power-of-two slots; entries are only removed in
/// bulk (compaction rebuilds the table), so no tombstones are needed. The
/// table is sized to twice the compaction window, bounding the load
/// factor at ~50%.
#[derive(Debug, Clone)]
struct LastSeen {
    keys: Vec<u64>,
    /// Timestamp per slot; `EMPTY` marks a free slot.
    vals: Vec<u32>,
    mask: usize,
    seed: u64,
}

impl LastSeen {
    fn new(slots: usize, seed: u64) -> Self {
        let slots = slots.next_power_of_two();
        LastSeen {
            keys: vec![0; slots],
            vals: vec![EMPTY; slots],
            mask: slots - 1,
            seed,
        }
    }

    /// The slot holding `key`, or the free slot where it belongs.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mut i = (mix64(self.seed, key) as usize) & self.mask;
        while self.vals[i] != EMPTY && self.keys[i] != key {
            i = (i + 1) & self.mask;
        }
        i
    }

    /// Sets `key`'s timestamp, returning the previous one if present.
    #[inline]
    fn replace(&mut self, key: u64, ts: u32) -> Option<u32> {
        let i = self.probe(key);
        let prev = self.vals[i];
        self.keys[i] = key;
        self.vals[i] = ts;
        (prev != EMPTY).then_some(prev)
    }

    fn clear(&mut self) {
        self.vals.fill(EMPTY);
    }

    /// All live `(line, timestamp)` entries, in table order.
    fn entries(&self) -> Vec<(u64, u32)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|&(_, &v)| v != EMPTY)
            .map(|(&k, &v)| (k, v))
            .collect()
    }
}

/// Words per popcount block: 8 × 64 = 512 timestamps summarised per entry.
const BLOCK_WORDS: usize = 8;

/// Occupancy bitmap over timestamps ("this timestamp is the latest access
/// to some live line") with per-block popcounts — the flat replacement for
/// the exact monitor's Fenwick tree. Updates are O(1); counting the live
/// marks between two timestamps scans at most `BLOCK_WORDS` words on each
/// edge and skips full blocks via the summaries.
#[derive(Debug, Clone)]
struct Marks {
    words: Vec<u64>,
    blocks: Vec<u32>,
}

impl Marks {
    fn new(timestamps: usize) -> Self {
        let words = timestamps.div_ceil(64);
        let blocks = words.div_ceil(BLOCK_WORDS);
        Marks {
            words: vec![0; words],
            blocks: vec![0; blocks],
        }
    }

    #[inline]
    fn set(&mut self, t: usize) {
        self.words[t >> 6] |= 1 << (t & 63);
        self.blocks[t >> 6 >> 3] += 1;
    }

    #[inline]
    fn unset(&mut self, t: usize) {
        self.words[t >> 6] &= !(1 << (t & 63));
        self.blocks[t >> 6 >> 3] -= 1;
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.blocks.fill(0);
    }

    /// Live marks with timestamp in `[lo, hi]` (inclusive; `lo <= hi`).
    #[inline]
    fn count_range(&self, lo: usize, hi: usize) -> u64 {
        let from = |b: usize| !0u64 << b; // bits >= b
        let upto = |b: usize| !0u64 >> (63 - b); // bits <= b
        let (wlo, whi) = (lo >> 6, hi >> 6);
        if wlo == whi {
            return (self.words[wlo] & from(lo & 63) & upto(hi & 63)).count_ones() as u64;
        }
        let mut total = (self.words[wlo] & from(lo & 63)).count_ones() as u64
            + (self.words[whi] & upto(hi & 63)).count_ones() as u64;
        let mut w = wlo + 1;
        while w < whi {
            if w % BLOCK_WORDS == 0 && w + BLOCK_WORDS <= whi {
                total += self.blocks[w / BLOCK_WORDS] as u64;
                w += BLOCK_WORDS;
            } else {
                total += self.words[w].count_ones() as u64;
                w += 1;
            }
        }
        total
    }
}

/// Distances up to this value get an exact histogram bin each.
const LINEAR: usize = 256;
/// Bins per octave beyond the exact range (≤ ~3% relative bin width).
const SUB: usize = 32;
/// `log2(LINEAR)`: the first log-bucketed octave.
const LINEAR_OCTAVE: usize = LINEAR.ilog2() as usize;

/// Log-bucketed histogram over sampled stack distances: exact bins for
/// `1..=LINEAR`, then `SUB` bins per octave. Curve extraction walks the
/// few hundred buckets instead of one bin per tracked line.
#[derive(Debug, Clone)]
struct LogHist {
    bins: Vec<u64>,
    /// Largest distance stored (inclusive); beyond is the caller's "far".
    scap: usize,
}

impl LogHist {
    fn new(scap: usize) -> Self {
        LogHist {
            bins: vec![0; Self::bucket(scap.max(1)) + 1],
            scap,
        }
    }

    /// Bucket index for distance `d >= 1`.
    #[inline]
    fn bucket(d: usize) -> usize {
        if d <= LINEAR {
            d - 1
        } else {
            let octave = (usize::BITS - 1 - d.leading_zeros()) as usize;
            let sub = (d - (1 << octave)) * SUB >> octave;
            LINEAR + (octave - LINEAR_OCTAVE) * SUB + sub
        }
    }

    /// Representative distance (bin midpoint) for bucket `i`.
    fn representative(i: usize) -> u64 {
        if i < LINEAR {
            (i + 1) as u64
        } else {
            let octave = LINEAR_OCTAVE + (i - LINEAR) / SUB;
            let sub = (i - LINEAR) % SUB;
            let lo = (1u64 << octave) + ((sub as u64) << octave) / SUB as u64;
            let hi = (1u64 << octave) + ((sub as u64 + 1) << octave) / SUB as u64;
            lo + (hi - lo) / 2
        }
    }

    #[inline]
    fn add(&mut self, d: usize) {
        self.bins[Self::bucket(d)] += 1;
    }

    fn clear(&mut self) {
        self.bins.fill(0);
    }

    /// `(scaled representative distance, cumulative count)` per bucket, in
    /// ascending distance order; `scale` maps sampled distances back to
    /// lines.
    fn cumulative(&self, scale: f64) -> (Vec<f64>, Vec<u64>) {
        let mut reps = Vec::with_capacity(self.bins.len());
        let mut cums = Vec::with_capacity(self.bins.len());
        let mut cum = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            cum += n;
            reps.push(Self::representative(i).min(self.scap as u64) as f64 * scale);
            cums.push(cum);
        }
        (reps, cums)
    }
}

/// Memoized [`LogHist::cumulative`] expansion, tagged with the recording
/// generation it was computed at. Curve extraction is read-only but every
/// query rebuilt this few-hundred-entry scan from scratch; planners ask
/// for curves far more often than histograms change (several `curve()`
/// calls per epoch against one batch of records), so the rebuild dominated
/// `monitor_curve/sampled_mattson_curve`. The cache holds the *exact*
/// `(reps, cums)` vectors the rebuild would produce — the query path reads
/// the same f64s either way, keeping cached curves bit-identical.
#[derive(Debug, Clone)]
struct CurveCache {
    /// Value of [`SampledMattson::generation`] when this was computed.
    generation: u64,
    reps: Vec<f64>,
    cums: Vec<u64>,
}

/// A sampled stack-distance monitor: a spatial hash filter in front of a
/// flat Mattson pass, rescaled back to full-stream units.
///
/// Produces curves statistically matching [`MattsonMonitor`] at roughly
/// `1/ratio` of the record cost (see `monitor_record/sampled_mattson` vs
/// `monitor_record/mattson_exact` in the benches).
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{Monitor, SampledMattson};
/// use talus_sim::LineAddr;
/// // A cyclic scan over 4096 lines, sampled 1-in-16: the cliff at 4096
/// // survives sampling (give or take binomial noise on the cliff edge).
/// let mut m = SampledMattson::new(8192, 16, 42);
/// for i in 0..200_000u64 {
///     m.record(LineAddr(i % 4096));
/// }
/// let curve = m.curve();
/// assert!(curve.value_at(3000.0) > 0.9); // well below the scan: ~all miss
/// assert!(curve.value_at(5000.0) < 0.1); // well above the scan: ~all hit
/// ```
///
/// [`MattsonMonitor`]: super::MattsonMonitor
#[derive(Debug, Clone)]
pub struct SampledMattson {
    /// Largest capacity (in lines) the monitor resolves.
    cap: u64,
    /// Sampling ratio `R`: roughly one in `R` lines is tracked.
    ratio: u64,
    /// Accept a line iff `mix64(seed, line) <= threshold`.
    threshold: u64,
    seed: u64,
    /// Tracked capacity in sampled space: `ceil(cap / ratio)`.
    scap: usize,
    hist: LogHist,
    /// Sampled accesses whose distance exceeded `scap`.
    far: u64,
    /// Sampled first-ever touches.
    cold: u64,
    /// Post-filter access count.
    sampled: u64,
    /// Pre-filter access count (what the full stream saw).
    observed: u64,
    table: LastSeen,
    marks: Marks,
    /// Live sampled lines (= marks set = live table entries).
    live: u64,
    now: usize,
    window: usize,
    /// Bumped on every mutation that can change the curve (records and
    /// resets); stamps [`CurveCache`] entries.
    generation: u64,
    /// Lazily rebuilt histogram expansion for the curve query path.
    cumulative: RefCell<Option<CurveCache>>,
}

impl SampledMattson {
    /// Creates a monitor resolving capacities up to `max_lines`, sampling
    /// roughly one in `ratio` lines with a hash seeded by `seed`.
    ///
    /// `ratio == 1` disables the filter (every line is tracked; distances
    /// up to 256 are then exact and larger ones bucketed to ~3%).
    ///
    /// # Panics
    ///
    /// Panics if `max_lines` or `ratio` is zero.
    pub fn new(max_lines: u64, ratio: u64, seed: u64) -> Self {
        assert!(max_lines > 0, "tracked capacity must be positive");
        assert!(ratio > 0, "sampling ratio must be positive");
        let scap = (max_lines.div_ceil(ratio) as usize).max(1);
        let window = (4 * scap).max(1 << 12);
        SampledMattson {
            cap: max_lines,
            ratio,
            threshold: u64::MAX / ratio,
            seed,
            scap,
            hist: LogHist::new(scap),
            far: 0,
            cold: 0,
            sampled: 0,
            observed: 0,
            table: LastSeen::new(2 * window, seed ^ 0x5A4D),
            marks: Marks::new(window),
            live: 0,
            now: 0,
            window,
            generation: 0,
            cumulative: RefCell::new(None),
        }
    }

    /// Largest capacity (in lines) this monitor resolves.
    pub fn max_lines(&self) -> u64 {
        self.cap
    }

    /// The sampling ratio `R` (one in `R` lines tracked).
    pub fn ratio(&self) -> u64 {
        self.ratio
    }

    /// Whether the spatial filter tracks this line. Deterministic per
    /// address, as Assumption 3 requires (sampling by address, not time).
    #[inline]
    pub fn is_sampled(&self, line: LineAddr) -> bool {
        mix64(self.seed, line.0) <= self.threshold
    }

    /// Accesses observed before the filter (the full stream length).
    pub fn observed_accesses(&self) -> u64 {
        self.observed
    }

    /// The distance scale mapping sampled-space distances back to lines:
    /// the *measured* inverse sampling rate (`observed / sampled`), not
    /// the nominal `ratio` — the SHARDS-adj-style correction. The filter
    /// admits a binomially-noisy fraction of the working set; using the
    /// realized rate cancels that noise, so e.g. a scan cliff lands at the
    /// true footprint instead of `ratio × (sampled lines)`.
    fn scale(&self) -> f64 {
        if self.sampled == 0 {
            self.ratio as f64
        } else {
            self.observed as f64 / self.sampled as f64
        }
    }

    /// Produces the miss curve evaluated on an arbitrary grid of line
    /// counts (values above `max_lines` clamp to the far+cold rate).
    ///
    /// Rates are estimated from the sampled sub-stream: hits at size `g`
    /// are sampled accesses whose rescaled distance (sampled distance ×
    /// realized inverse sampling rate) fits in `g` lines.
    pub fn curve_on_grid(&self, grid: &[u64]) -> MissCurve {
        let total = self.sampled.max(1) as f64;
        let mut slot = self.cumulative.borrow_mut();
        if slot
            .as_ref()
            .is_none_or(|c| c.generation != self.generation)
        {
            let (reps, cums) = self.hist.cumulative(self.scale());
            *slot = Some(CurveCache {
                generation: self.generation,
                reps,
                cums,
            });
        }
        let cache = slot.as_ref().expect("cache populated above");
        let mut sizes = Vec::with_capacity(grid.len() + 1);
        let mut misses = Vec::with_capacity(grid.len() + 1);
        if grid.first().copied() != Some(0) {
            sizes.push(0.0);
            misses.push(1.0);
        }
        for &g in grid {
            let idx = cache.reps.partition_point(|&r| r <= g as f64);
            let hits = if idx == 0 { 0 } else { cache.cums[idx - 1] };
            sizes.push(g as f64);
            misses.push((self.sampled - hits) as f64 / total);
        }
        MissCurve::from_samples(&sizes, &misses).expect("grid is sorted and rates are finite")
    }

    /// One access that already passed the spatial filter.
    #[inline]
    fn record_sampled(&mut self, line: LineAddr) {
        if self.now >= self.window {
            self.compact();
        }
        self.sampled += 1;
        let now = self.now;
        match self.table.replace(line.0, now as u32) {
            Some(prev) => {
                let prev = prev as usize;
                // Distinct sampled lines in (prev, now), plus the line
                // itself — the sampled-space stack distance. Every live
                // mark sits below `now`, so the count on either side of
                // `prev` determines the other; scan whichever is shorter
                // (recent reuses scan a short suffix, scans a short
                // prefix).
                let between = if 2 * prev >= now {
                    if prev + 1 < now {
                        self.marks.count_range(prev + 1, now - 1)
                    } else {
                        0
                    }
                } else {
                    self.live - self.marks.count_range(0, prev)
                };
                let distance = between as usize + 1;
                if distance <= self.scap {
                    self.hist.add(distance);
                } else {
                    self.far += 1;
                }
                self.marks.unset(prev);
            }
            None => {
                self.cold += 1;
                self.live += 1;
            }
        }
        self.marks.set(now);
        self.now += 1;
    }

    /// Compacts the timestamp window: re-indexes the most recent `scap`
    /// sampled lines to timestamps `0..k` and drops the rest (their next
    /// access would be beyond the tracked range anyway).
    fn compact(&mut self) {
        let mut entries = self.table.entries();
        entries.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        entries.truncate(self.scap);
        entries.reverse(); // oldest kept entry first
        self.table.clear();
        self.marks.clear();
        for (i, &(line, _)) in entries.iter().enumerate() {
            self.table.replace(line, i as u32);
            self.marks.set(i);
        }
        self.live = entries.len() as u64;
        self.now = entries.len();
    }
}

impl Monitor for SampledMattson {
    fn record(&mut self, line: LineAddr) {
        // Even a filtered-out access moves `observed`, and with it the
        // rescale factor — so every record invalidates the curve cache.
        self.generation += 1;
        self.observed += 1;
        if self.is_sampled(line) {
            self.record_sampled(line);
        }
    }

    fn record_block(&mut self, lines: &[LineAddr]) {
        // Same filter-then-record loop as the scalar path (the big win —
        // rejecting ~(R-1)/R of lines with one mix64 and a compare — is
        // the filter itself, not the batching); the block path only lifts
        // the observed-counter update out of the loop, which keeps the
        // reject case free of stores entirely.
        self.generation += 1;
        self.observed += lines.len() as u64;
        for &line in lines {
            if self.is_sampled(line) {
                self.record_sampled(line);
            }
        }
    }

    fn curve(&self) -> MissCurve {
        self.curve_on_grid(&default_grid(self.cap))
    }

    fn sampled_accesses(&self) -> u64 {
        self.sampled
    }

    fn reset(&mut self) {
        self.generation += 1;
        self.hist.clear();
        self.far = 0;
        self.cold = 0;
        self.sampled = 0;
        self.observed = 0;
        // Keep table/marks: the monitor stays warm across intervals.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::{scan_stream, uniform_stream};
    use crate::monitor::MattsonMonitor;

    /// L∞ distance between two curves on a grid.
    fn linf(a: &MissCurve, b: &MissCurve, grid: &[u64]) -> f64 {
        grid.iter()
            .map(|&g| (a.value_at(g as f64) - b.value_at(g as f64)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn log_hist_buckets_are_monotone_and_tight() {
        // Every distance lands in a bucket whose representative is within
        // ~3% (1/SUB of an octave), and bucket indices never decrease.
        let mut prev = 0;
        for d in 1..100_000usize {
            let b = LogHist::bucket(d);
            assert!(b >= prev, "bucket order violated at {d}");
            prev = b;
            let rep = LogHist::representative(b) as f64;
            let err = (rep - d as f64).abs() / d as f64;
            assert!(err <= 0.05, "bucket rep {rep} too far from {d}");
        }
    }

    #[test]
    fn marks_count_matches_naive_bitset() {
        let mut m = Marks::new(4096);
        let mut naive = vec![false; 4096];
        let mut state = 9u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let t = (state >> 33) as usize % 4096;
            if naive[t] {
                m.unset(t);
                naive[t] = false;
            } else {
                m.set(t);
                naive[t] = true;
            }
        }
        for &(lo, hi) in &[
            (0usize, 4095usize),
            (5, 5),
            (63, 64),
            (100, 700),
            (512, 1024),
        ] {
            let expect = naive[lo..=hi].iter().filter(|&&b| b).count() as u64;
            assert_eq!(m.count_range(lo, hi), expect, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn ratio_one_matches_exact_mattson() {
        // With the filter disabled and distances inside the exact-bin
        // range, the flat pipeline must reproduce MattsonMonitor exactly.
        let stream = uniform_stream(150, 30_000, 3);
        let mut exact = MattsonMonitor::new(256);
        let mut flat = SampledMattson::new(256, 1, 7);
        for &l in &stream {
            exact.record(l);
            flat.record(l);
        }
        assert_eq!(flat.sampled_accesses(), exact.sampled_accesses());
        let grid: Vec<u64> = (0..=256).collect();
        assert!(
            linf(
                &exact.curve_on_grid(&grid),
                &flat.curve_on_grid(&grid),
                &grid
            ) < 1e-12,
            "exact-range curves must coincide"
        );
    }

    #[test]
    fn sampled_accesses_reports_post_filter_counts() {
        let stream = uniform_stream(10_000, 40_000, 5);
        let mut m = SampledMattson::new(4096, 16, 11);
        let expected: u64 = stream.iter().filter(|&&l| m.is_sampled(l)).count() as u64;
        for &l in &stream {
            m.record(l);
        }
        assert_eq!(m.sampled_accesses(), expected, "post-filter count");
        assert_eq!(m.observed_accesses(), stream.len() as u64);
        // The filter passes roughly 1/16 of a large uniform stream.
        let frac = expected as f64 / stream.len() as f64;
        assert!((frac - 1.0 / 16.0).abs() < 0.02, "pass rate {frac}");
    }

    #[test]
    fn scan_cliff_survives_sampling() {
        // Cyclic scan over 4096 lines at 1/16 sampling: the sampled cliff
        // sits at (sampled lines × 16), within a few percent of 4096. L∞
        // is checked outside a ±15% guard band around the cliff — at a
        // vertical cliff, L∞ is ill-conditioned in exactly the band whose
        // width is the sampling noise (SHARDS has the same property).
        let lines = 4096u64;
        let mut exact = MattsonMonitor::new(2 * lines as usize as u64);
        let mut sampled = SampledMattson::new(2 * lines, 16, 17);
        for &l in &scan_stream(lines, 40 * lines as usize) {
            exact.record(l);
            sampled.record(l);
        }
        let guard = (lines as f64 * 0.15) as u64;
        let grid: Vec<u64> = (0..=2 * lines)
            .step_by(64)
            .filter(|&g| g < lines - guard || g > lines + guard)
            .collect();
        let err = linf(
            &exact.curve_on_grid(&grid),
            &sampled.curve_on_grid(&grid),
            &grid,
        );
        assert!(err < 0.05, "L∞ off the cliff band: {err}");
        // And the cliff itself lands within the guard band: well below it
        // everything misses, well above it everything hits.
        let c = sampled.curve_on_grid(&(0..=2 * lines).step_by(64).collect::<Vec<_>>());
        assert!(c.value_at((lines - guard) as f64) > 0.9);
        assert!(c.value_at((lines + guard) as f64) < 0.1);
    }

    #[test]
    fn uniform_stream_converges_to_exact() {
        // Smooth curve: no cliff, so plain L∞ over the whole grid applies.
        let stream = uniform_stream(4096, 120_000, 23);
        let mut exact = MattsonMonitor::new(8192);
        let mut sampled = SampledMattson::new(8192, 16, 29);
        for chunk in stream.chunks(512) {
            exact.record_block(chunk);
            sampled.record_block(chunk);
        }
        let grid: Vec<u64> = (0..=8192).step_by(128).collect();
        let err = linf(
            &exact.curve_on_grid(&grid),
            &sampled.curve_on_grid(&grid),
            &grid,
        );
        assert!(err < 0.05, "L∞ on uniform stream: {err}");
    }

    #[test]
    fn record_block_is_equivalent_to_per_access() {
        let stream = uniform_stream(2000, 30_000, 13);
        let mut one = SampledMattson::new(1024, 8, 3);
        let mut block = SampledMattson::new(1024, 8, 3);
        for &l in &stream {
            one.record(l);
        }
        for chunk in stream.chunks(333) {
            block.record_block(chunk);
        }
        assert_eq!(one.sampled_accesses(), block.sampled_accesses());
        assert_eq!(one.observed_accesses(), block.observed_accesses());
        let grid: Vec<u64> = (0..=1024).step_by(32).collect();
        assert!(
            linf(
                &one.curve_on_grid(&grid),
                &block.curve_on_grid(&grid),
                &grid
            ) < 1e-12,
            "block and scalar paths must agree exactly"
        );
    }

    #[test]
    fn compaction_preserves_sampled_distances() {
        // The compaction trigger counts *sampled accesses*, so a long
        // stream over a footprint well inside the tracked range still
        // compacts repeatedly (15k sampled vs a 4096 window here) while
        // every distance stays in the exact-bin range — where curves must
        // match a monitor with no window pressure bit-for-bit (same seed →
        // same sample set, same bins).
        let stream = uniform_stream(800, 60_000, 19);
        let mut small = SampledMattson::new(2048, 4, 5); // scap 512 → window 4096
        let mut big = SampledMattson::new(65536, 4, 5); // effectively no pressure
        for &l in &stream {
            small.record(l);
            big.record(l);
        }
        assert_eq!(small.cold, big.cold, "compaction dropped live lines");
        let grid: Vec<u64> = (0..=2048).step_by(64).collect();
        assert!(
            linf(
                &small.curve_on_grid(&grid),
                &big.curve_on_grid(&grid),
                &grid
            ) < 1e-12,
            "compaction changed tracked distances"
        );
    }

    #[test]
    fn reset_clears_statistics_but_stays_warm() {
        let mut m = SampledMattson::new(512, 2, 1);
        for &l in &scan_stream(64, 4096) {
            m.record(l);
        }
        m.reset();
        assert_eq!(m.sampled_accesses(), 0);
        assert_eq!(m.observed_accesses(), 0);
        // Second pass over the same lines: all warm (no cold misses), so
        // the curve hits once capacity covers the loop.
        for &l in &scan_stream(64, 640) {
            m.record(l);
        }
        assert_eq!(m.cold, 0, "tags stayed warm across reset");
        let c = m.curve_on_grid(&[0, 32, 64, 128]);
        assert!(c.value_at(128.0) < 0.01);
    }

    #[test]
    fn curve_cache_is_bit_equivalent_and_invalidates() {
        // Interleave records and curve queries. At each checkpoint the
        // warm monitor's curve (served through the memoized expansion,
        // possibly stale-then-refreshed) must be bit-identical to a fresh
        // replay's *first* query — which is exactly the uncached
        // computation. Repeated queries at the same state must also be
        // bit-identical to each other, and `reset` must invalidate.
        let stream = uniform_stream(3000, 50_000, 41);
        let grid: Vec<u64> = (0..=4096).step_by(13).collect();
        let mut warm = SampledMattson::new(4096, 4, 9);
        for (i, &l) in stream.iter().enumerate() {
            warm.record(l);
            if i % 9000 == 0 || i + 1 == stream.len() {
                let mut fresh = SampledMattson::new(4096, 4, 9);
                for &r in &stream[..=i] {
                    fresh.record(r);
                }
                let uncached = fresh.curve_on_grid(&grid);
                let first = warm.curve_on_grid(&grid);
                let repeat = warm.curve_on_grid(&grid);
                for ((u, a), b) in uncached.iter().zip(first.iter()).zip(repeat.iter()) {
                    assert!(
                        u.size.to_bits() == a.size.to_bits()
                            && u.misses.to_bits() == a.misses.to_bits(),
                        "cached path diverged from fresh computation at access {i}"
                    );
                    assert!(
                        a.misses.to_bits() == b.misses.to_bits(),
                        "repeat query diverged at access {i}"
                    );
                }
            }
        }
        // Reset must invalidate: a stale expansion would pair the old
        // nonzero cumulative hits with the cleared `sampled == 0` counter
        // (underflowing `sampled - hits`); the refreshed one reads 0.
        warm.reset();
        let after_reset = warm.curve_on_grid(&grid);
        assert_eq!(after_reset.value_at(2048.0), 0.0);
    }

    #[test]
    fn curve_includes_origin() {
        let mut m = SampledMattson::new(64, 1, 2);
        m.record(LineAddr(1));
        let c = m.curve();
        assert_eq!(c.min_size(), 0.0);
        assert_eq!(c.value_at(0.0), 1.0);
        assert_eq!(c.max_size(), 64.0, "default grid ends at cap");
    }

    #[test]
    #[should_panic(expected = "sampling ratio")]
    fn zero_ratio_rejected() {
        SampledMattson::new(64, 0, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SampledMattson::new(0, 4, 1);
    }
}
