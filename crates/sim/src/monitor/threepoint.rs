//! CRUISE-style three-point miss-curve monitor.
//!
//! The paper's §VI-C notes that CRUISE (Jaleel et al., ASPLOS 2012)
//! "takes a similar approach … to find the misses with both half of the
//! cache and the full cache, in effect producing 3-point miss curves".
//! [`ThreePointMonitor`] reproduces that design point: two pseudo-randomly
//! sampled LRU tag stores model the miss rate at half capacity and at
//! full capacity (Theorem 4: a 1:R-sampled monitor of `C/R` lines behaves
//! like a `C`-line cache), and the curve is completed with the
//! all-miss point at size zero.
//!
//! Three points are enough for CRUISE's scheduling decisions, but they
//! starve Talus: the hull can only have vertices at {0, C/2, C}, and a
//! cliff *beyond* the modeled range (libquantum's 32 MB cliff seen from a
//! 16 MB cache) is invisible, so Talus cannot bridge it. The `coverage`
//! knob scales the two modeled sizes — the monitor-resolution ablation
//! uses it to separate the cost of few points from the cost of short
//! coverage.

use super::Monitor;
use crate::addr::LineAddr;
use crate::array::{CacheModel, FullyAssocLru};
use crate::hasher::SampleFilter;
use crate::policy::AccessCtx;
use talus_core::MissCurve;

/// Largest tag store the monitor may allocate (the paper's UMONs are 1K
/// lines; we keep the same budget per array).
const MAX_MONITOR_LINES: u64 = 1024;

/// A three-point miss-curve monitor: `{0, k·C/2, k·C}` for a modeled
/// capacity `C` and coverage factor `k`.
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{Monitor, ThreePointMonitor};
/// use talus_sim::LineAddr;
/// let mut mon = ThreePointMonitor::new(4096, 7);
/// for i in 0..50_000u64 {
///     mon.record(LineAddr(i % 1024));
/// }
/// let curve = mon.curve();
/// // Exactly three points: 0, half, full.
/// assert_eq!(curve.points().len(), 3);
/// ```
#[derive(Debug)]
pub struct ThreePointMonitor {
    filter: SampleFilter,
    half: FullyAssocLru,
    full: FullyAssocLru,
    /// Modeled size of the `full` array in LLC lines (`k·C`).
    modeled_full: u64,
    sampled: u64,
}

impl ThreePointMonitor {
    /// Builds a monitor for a cache of `capacity_lines` with coverage 1.0
    /// (CRUISE's configuration: half and full cache).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(capacity_lines: u64, seed: u64) -> Self {
        Self::with_coverage(capacity_lines, 1.0, seed)
    }

    /// Builds a monitor whose two modeled sizes are `k·C/2` and `k·C`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero or `coverage` is not positive.
    pub fn with_coverage(capacity_lines: u64, coverage: f64, seed: u64) -> Self {
        assert!(capacity_lines > 0, "capacity must be positive");
        assert!(
            coverage > 0.0 && coverage.is_finite(),
            "coverage must be positive"
        );
        let modeled_full = ((capacity_lines as f64 * coverage) as u64).max(2);
        let ratio = modeled_full.div_ceil(MAX_MONITOR_LINES).max(1);
        let full_lines = (modeled_full / ratio).max(2);
        ThreePointMonitor {
            filter: SampleFilter::new(ratio, seed ^ 0x3907),
            half: FullyAssocLru::new((full_lines / 2).max(1)),
            full: FullyAssocLru::new(full_lines),
            modeled_full,
            sampled: 0,
        }
    }

    /// The larger of the two modeled sizes (`k·C`), in LLC lines.
    pub fn modeled_full_lines(&self) -> u64 {
        self.modeled_full
    }
}

impl Monitor for ThreePointMonitor {
    fn record(&mut self, line: LineAddr) {
        if !self.filter.accepts(line) {
            return;
        }
        self.sampled += 1;
        let ctx = AccessCtx::new();
        self.half.access(line, &ctx);
        self.full.access(line, &ctx);
    }

    fn curve(&self) -> MissCurve {
        // Cold monitors report the all-miss curve.
        let (half_rate, full_rate) = if self.sampled == 0 {
            (1.0, 1.0)
        } else {
            let h = self.half.stats().miss_rate();
            let f = self.full.stats().miss_rate();
            // Enforce monotonicity against sampling noise.
            (h.max(f), f)
        };
        MissCurve::from_samples(
            &[
                0.0,
                self.modeled_full as f64 / 2.0,
                self.modeled_full as f64,
            ],
            &[1.0f64.max(half_rate), half_rate, full_rate],
        )
        .expect("three-point sizes are strictly increasing")
    }

    fn sampled_accesses(&self) -> u64 {
        self.sampled
    }

    fn reset(&mut self) {
        self.half.reset_stats();
        self.full.reset_stats();
        self.sampled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::{scan_stream, uniform_stream};

    #[test]
    fn curve_has_exactly_three_points() {
        let mut m = ThreePointMonitor::new(2048, 1);
        for l in uniform_stream(512, 40_000, 3) {
            m.record(l);
        }
        let c = m.curve();
        assert_eq!(c.points().len(), 3);
        assert_eq!(c.points()[0].size, 0.0);
        assert_eq!(c.points()[2].size, 2048.0);
    }

    #[test]
    fn small_working_set_hits_at_both_sizes() {
        let mut m = ThreePointMonitor::new(4096, 1);
        for l in uniform_stream(512, 80_000, 3) {
            m.record(l);
        }
        let c = m.curve();
        assert!(c.value_at(2048.0) < 0.2, "half: {}", c.value_at(2048.0));
        assert!(c.value_at(4096.0) < 0.2, "full: {}", c.value_at(4096.0));
    }

    #[test]
    fn scan_between_half_and_full_separates_the_points() {
        // A cyclic scan over 3/4 of capacity: misses everything at C/2,
        // fits at C.
        let mut m = ThreePointMonitor::new(4096, 1);
        for l in scan_stream(3072, 120_000) {
            m.record(l);
        }
        let c = m.curve();
        assert!(c.value_at(2048.0) > 0.8, "half: {}", c.value_at(2048.0));
        assert!(c.value_at(4096.0) < 0.3, "full: {}", c.value_at(4096.0));
    }

    #[test]
    fn coverage_extends_the_modeled_range() {
        let m = ThreePointMonitor::with_coverage(4096, 2.0, 1);
        assert_eq!(m.modeled_full_lines(), 8192);
        let c = m.curve();
        assert_eq!(c.points()[2].size, 8192.0);
    }

    #[test]
    fn cliff_beyond_coverage_is_invisible() {
        // The CRUISE limitation Talus cares about: a scan over 2× capacity
        // misses at both modeled sizes, so the 3-point curve is flat — no
        // bridgeable cliff, even though one exists at 2C.
        let mut m = ThreePointMonitor::new(2048, 1);
        for l in scan_stream(4096, 100_000) {
            m.record(l);
        }
        let c = m.curve();
        assert!(c.value_at(1024.0) > 0.9);
        assert!(
            c.value_at(2048.0) > 0.9,
            "flat at full: {}",
            c.value_at(2048.0)
        );
        // With 2x coverage the same monitor budget sees the cliff.
        let mut wide = ThreePointMonitor::with_coverage(2048, 2.0, 1);
        for l in scan_stream(4096, 100_000) {
            wide.record(l);
        }
        assert!(wide.curve().value_at(4096.0) < 0.3);
    }

    #[test]
    fn reset_clears_rates_but_keeps_tags() {
        let mut m = ThreePointMonitor::new(2048, 1);
        for l in uniform_stream(256, 20_000, 5) {
            m.record(l);
        }
        m.reset();
        assert_eq!(m.sampled_accesses(), 0);
        // Warm tags: the first re-recorded accesses mostly hit.
        for l in uniform_stream(256, 20_000, 5) {
            m.record(l);
        }
        assert!(m.curve().value_at(2048.0) < 0.1);
    }

    #[test]
    fn cold_monitor_reports_all_miss() {
        let m = ThreePointMonitor::new(1024, 1);
        let c = m.curve();
        assert_eq!(c.value_at(0.0), 1.0);
        assert_eq!(c.value_at(1024.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "coverage must be positive")]
    fn rejects_zero_coverage() {
        ThreePointMonitor::with_coverage(1024, 0.0, 1);
    }
}
