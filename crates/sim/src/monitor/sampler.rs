//! Multi-monitor curve sampling for policies without the stack property.
//!
//! High-performance policies (SRRIP, DRRIP, …) do not obey the stack
//! property, so no single array can sample their whole miss curve. The
//! paper's workaround (§VI-C) is one monitor per curve point: monitor *i*
//! samples the stream at rate `ρᵢ = monitor_capacity / sizeᵢ`, so by
//! Theorem 4 a small array behaves like a cache of `sizeᵢ` — at the cost
//! the paper acknowledges is impractical in hardware (64 × 4 KB per core)
//! but which a simulator is happy to pay.

use super::Monitor;
use crate::addr::LineAddr;
use crate::array::{CacheModel, SetAssocCache};
use crate::hasher::mix64;
use crate::policy::{AccessCtx, AnyPolicy, PolicyKind, ReplacementPolicy};
use talus_core::MissCurve;

/// One sampled shadow monitor: a small cache modelling a larger one.
#[derive(Debug)]
struct Point {
    modeled_lines: u64,
    /// Sampling ratio ρ⁻¹: the monitor sees ~one in `ratio` lines.
    ratio: u64,
    /// Accept a line iff `mix64(bank seed, addr) <= threshold`
    /// (`u64::MAX / ratio`, so acceptance probability is ~1/ratio).
    threshold: u64,
    cache: SetAssocCache<AnyPolicy>,
}

/// A bank of sampled monitors producing an N-point miss curve for an
/// arbitrary replacement policy.
///
/// All monitors share **one** hash: each address is mixed once
/// ([`mix64`]) and compared against per-point thresholds. Because the
/// thresholds are nested — a line sampled at rate ρᵢ is sampled at every
/// coarser rate ρⱼ > ρᵢ — the points form a telescoping family, points
/// are checked coarsest-first, and the first rejecting point ends the
/// scan: a rejected monitor costs one compare and no stores. (The
/// original formulation evaluated an independent `SampleFilter` H3 hash
/// per point per access — 16 hashes per line for the paper's §VI-C SRRIP
/// bank.) Built-in policies run statically dispatched ([`AnyPolicy`]);
/// [`with_policy`](CurveSampler::with_policy) keeps the dynamic escape
/// hatch for custom policies.
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{CurveSampler, Monitor};
/// use talus_sim::policy::PolicyKind;
/// use talus_sim::LineAddr;
/// let sizes: Vec<u64> = (1..=8).map(|i| i * 512).collect();
/// let mut s = CurveSampler::new(PolicyKind::Srrip, &sizes, 512, 16, 42);
/// for i in 0..200_000u64 {
///     s.record(LineAddr(i % 1500));
/// }
/// let curve = s.curve();
/// assert!(curve.value_at(512.0) > curve.value_at(4096.0));
/// ```
#[derive(Debug)]
pub struct CurveSampler {
    points: Vec<Point>,
    /// Seed of the bank's single sampling hash.
    hash_seed: u64,
    accesses: u64,
    /// Reusable survivor buffers for [`record_block`](Monitor::record_block):
    /// the lines still sampled at the current point, and their hashes.
    scratch_lines: Vec<LineAddr>,
    scratch_hashes: Vec<u64>,
}

impl CurveSampler {
    /// Creates one monitor per entry of `modeled_sizes` (lines, sorted
    /// ascending). Each monitor is a `monitor_lines`-line, `ways`-way cache
    /// running a fresh instance of `policy`; sizes smaller than
    /// `monitor_lines` get an exact unsampled mini-cache instead.
    ///
    /// # Panics
    ///
    /// Panics if `modeled_sizes` is empty or unsorted, or if geometry is
    /// invalid.
    pub fn new(
        policy: PolicyKind,
        modeled_sizes: &[u64],
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self {
        Self::with_any_policy(
            |s| policy.build_any(s),
            modeled_sizes,
            monitor_lines,
            ways,
            seed,
        )
    }

    /// Like [`new`](Self::new), but for *custom* policies: `factory` is
    /// called once per monitor with a distinct seed and returns a fresh
    /// policy instance. This is the hook downstream code uses to measure
    /// miss curves — and therefore run Talus — on policies this crate has
    /// never heard of (see the `custom_policy` example). Dispatch goes
    /// through [`AnyPolicy::Custom`], i.e. exactly the old boxed path.
    ///
    /// # Panics
    ///
    /// Panics if `modeled_sizes` is empty or unsorted, or if geometry is
    /// invalid.
    pub fn with_policy<F>(
        factory: F,
        modeled_sizes: &[u64],
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self
    where
        F: Fn(u64) -> Box<dyn ReplacementPolicy>,
    {
        Self::with_any_policy(
            |s| AnyPolicy::Custom(factory(s)),
            modeled_sizes,
            monitor_lines,
            ways,
            seed,
        )
    }

    /// The generic core behind [`new`](Self::new) and
    /// [`with_policy`](Self::with_policy): `factory` produces one
    /// [`AnyPolicy`] per monitor.
    ///
    /// # Panics
    ///
    /// Panics if `modeled_sizes` is empty or unsorted, or if geometry is
    /// invalid.
    pub fn with_any_policy<F>(
        factory: F,
        modeled_sizes: &[u64],
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self
    where
        F: Fn(u64) -> AnyPolicy,
    {
        assert!(!modeled_sizes.is_empty(), "need at least one modelled size");
        assert!(
            modeled_sizes.windows(2).all(|w| w[0] < w[1]),
            "modelled sizes must be strictly increasing"
        );
        let points: Vec<Point> = modeled_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                let size = size.max(ways as u64);
                let (cap, ratio) = if size <= monitor_lines {
                    (size / ways as u64 * ways as u64, 1u64)
                } else {
                    // ρ = monitor/size rounded so capacity stays aligned.
                    let ratio = size.div_ceil(monitor_lines);
                    (monitor_lines, ratio)
                };
                let cap = cap.max(ways as u64);
                Point {
                    modeled_lines: cap * ratio,
                    ratio,
                    threshold: u64::MAX / ratio,
                    cache: SetAssocCache::new(
                        cap,
                        ways,
                        factory(seed.wrapping_add(i as u64)),
                        seed.wrapping_add(1000 + i as u64),
                    ),
                }
            })
            .collect();
        // Sizes ascend, so ratios ascend and thresholds descend — the
        // invariant the record loop's early exit depends on.
        debug_assert!(points.windows(2).all(|w| w[0].threshold >= w[1].threshold));
        CurveSampler {
            points,
            hash_seed: seed ^ 0x5A3D_1E6B_9C2F_84A7,
            accesses: 0,
            scratch_lines: Vec::new(),
            scratch_hashes: Vec::new(),
        }
    }

    /// Number of monitors (curve points, excluding the origin).
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The hardware cost of this bank in monitor lines (for the §VI-C
    /// overhead discussion).
    pub fn monitor_lines_total(&self) -> u64 {
        self.points.iter().map(|p| p.cache.capacity_lines()).sum()
    }

    /// The cache sizes (in lines) this bank models, ascending.
    pub fn modeled_sizes(&self) -> Vec<u64> {
        self.points.iter().map(|p| p.modeled_lines).collect()
    }

    /// The sampling ratios of the bank's monitors (ascending; 1 = exact).
    pub fn sampling_ratios(&self) -> Vec<u64> {
        self.points.iter().map(|p| p.ratio).collect()
    }

    /// Whether `line` is sampled by point `index` — the nested-filter
    /// predicate the record loop short-circuits on (tests assert the
    /// telescoping property through this).
    pub fn samples(&self, index: usize, line: LineAddr) -> bool {
        mix64(self.hash_seed, line.value()) <= self.points[index].threshold
    }
}

impl Monitor for CurveSampler {
    fn record(&mut self, line: LineAddr) {
        self.accesses += 1;
        let h = mix64(self.hash_seed, line.value());
        let ctx = AccessCtx::new();
        for p in &mut self.points {
            if h > p.threshold {
                // Nested filters: every finer-rate point also rejects.
                break;
            }
            p.cache.access(line, &ctx);
        }
    }

    fn record_block(&mut self, lines: &[LineAddr]) {
        self.accesses += lines.len() as u64;
        let seed = self.hash_seed;
        let ctx = AccessCtx::new();
        // Point-major order (points are independent, so this is
        // bit-for-bit the per-access order), with the survivor list
        // compacted as the thresholds tighten: each point's sample is a
        // subset of the previous point's (nested filters), so the filter
        // work telescopes instead of rescanning the whole block per point,
        // and every point ingests its survivors as one contiguous block.
        self.scratch_lines.clear();
        self.scratch_lines.extend_from_slice(lines);
        self.scratch_hashes.clear();
        self.scratch_hashes
            .extend(lines.iter().map(|&l| mix64(seed, l.value())));
        let mut live = lines.len();
        let mut prev_threshold = u64::MAX;
        for p in &mut self.points {
            if p.threshold < prev_threshold {
                let mut kept = 0;
                for i in 0..live {
                    if self.scratch_hashes[i] <= p.threshold {
                        self.scratch_lines[kept] = self.scratch_lines[i];
                        self.scratch_hashes[kept] = self.scratch_hashes[i];
                        kept += 1;
                    }
                }
                live = kept;
                prev_threshold = p.threshold;
            }
            if live == 0 {
                break; // finer points sample subsets: nothing left to see
            }
            p.cache.access_block(&self.scratch_lines[..live], &ctx);
        }
    }

    fn curve(&self) -> MissCurve {
        let mut sizes = vec![0.0f64];
        let mut misses = vec![1.0f64];
        for p in &self.points {
            let s = p.cache.stats();
            let rate = if s.accesses() == 0 {
                1.0
            } else {
                s.miss_rate()
            };
            // Guard against duplicate modelled sizes after rounding.
            if sizes.last().copied() != Some(p.modeled_lines as f64) {
                sizes.push(p.modeled_lines as f64);
                misses.push(rate);
            }
        }
        MissCurve::from_samples(&sizes, &misses).expect("sizes are increasing")
    }

    fn sampled_accesses(&self) -> u64 {
        self.accesses
    }

    fn reset(&mut self) {
        for p in &mut self.points {
            p.cache.reset_stats();
        }
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::{scan_stream, uniform_stream};

    #[test]
    fn sampler_builds_requested_points() {
        let sizes: Vec<u64> = vec![256, 512, 1024, 2048];
        let s = CurveSampler::new(PolicyKind::Lru, &sizes, 256, 16, 1);
        assert_eq!(s.num_points(), 4);
        assert!(s.monitor_lines_total() <= 4 * 256);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn sampler_rejects_unsorted_sizes() {
        CurveSampler::new(PolicyKind::Lru, &[512, 256], 256, 16, 1);
    }

    #[test]
    fn lru_sampler_matches_mattson() {
        use crate::monitor::MattsonMonitor;
        let stream = uniform_stream(1500, 500_000, 21);
        let sizes: Vec<u64> = (1..=8).map(|i| i * 512).collect();
        let mut s = CurveSampler::new(PolicyKind::Lru, &sizes, 512, 16, 2);
        let mut m = MattsonMonitor::new(4096);
        for &l in &stream {
            s.record(l);
            m.record(l);
        }
        let cs = s.curve();
        let cm = m.curve_on_grid(&sizes);
        for &size in &sizes {
            let a = cs.value_at(size as f64);
            let b = cm.value_at(size as f64);
            assert!(
                (a - b).abs() < 0.10,
                "size {size}: sampler {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn srrip_shares_lru_cliff_but_brrip_resists() {
        // Pure cyclic scan over 3000 lines at 1024 lines of cache. SRRIP
        // inserts everything at "long" and, with no hits to promote, ages
        // into FIFO behaviour — it thrashes exactly like LRU. (This is why
        // the paper's Fig. 9 shows Talus removing SRRIP's libquantum cliff
        // too.) BRRIP's bimodal insertion keeps a resident fraction and
        // escapes the cliff.
        let stream = scan_stream(3000, 600_000);
        let sizes = vec![1024u64];
        let mut srrip = CurveSampler::new(PolicyKind::Srrip, &sizes, 1024, 16, 3);
        let mut brrip = CurveSampler::new(PolicyKind::Brrip, &sizes, 1024, 16, 3);
        let mut lru = CurveSampler::new(PolicyKind::Lru, &sizes, 1024, 16, 3);
        for &l in &stream {
            srrip.record(l);
            brrip.record(l);
            lru.record(l);
        }
        let ms = srrip.curve().value_at(1024.0);
        let mb = brrip.curve().value_at(1024.0);
        let ml = lru.curve().value_at(1024.0);
        assert!(ml > 0.95, "LRU thrashes: {ml}");
        assert!(ms > 0.95, "SRRIP thrashes on pure scans too: {ms}");
        assert!(mb < 0.9, "BRRIP protects part of the loop: {mb}");
    }

    #[test]
    fn sampled_point_approximates_unsampled_cache() {
        use crate::array::{CacheModel, SetAssocCache};
        use crate::policy::Srrip;
        // Theorem 4 applied to monitors: a 512-line monitor at ratio 4
        // should track a real 2048-line cache.
        let stream = uniform_stream(3000, 800_000, 33);
        let mut s = CurveSampler::new(PolicyKind::Srrip, &[2048], 512, 16, 4);
        let mut real = SetAssocCache::new(2048, 16, Srrip::new(), 5);
        let ctx = AccessCtx::new();
        for &l in &stream {
            s.record(l);
            real.access(l, &ctx);
        }
        let est = s.curve().value_at(2048.0);
        let act = real.stats().miss_rate();
        assert!((est - act).abs() < 0.08, "estimated {est} vs actual {act}");
    }

    #[test]
    fn reset_zeroes_accesses() {
        let mut s = CurveSampler::new(PolicyKind::Lru, &[256], 256, 16, 1);
        for &l in &uniform_stream(100, 1000, 3) {
            s.record(l);
        }
        s.reset();
        assert_eq!(s.sampled_accesses(), 0);
    }
}
