//! Multi-monitor curve sampling for policies without the stack property.
//!
//! High-performance policies (SRRIP, DRRIP, …) do not obey the stack
//! property, so no single array can sample their whole miss curve. The
//! paper's workaround (§VI-C) is one monitor per curve point: monitor *i*
//! samples the stream at rate `ρᵢ = monitor_capacity / sizeᵢ`, so by
//! Theorem 4 a small array behaves like a cache of `sizeᵢ` — at the cost
//! the paper acknowledges is impractical in hardware (64 × 4 KB per core)
//! but which a simulator is happy to pay.

use super::Monitor;
use crate::addr::LineAddr;
use crate::array::{CacheModel, SetAssocCache};
use crate::hasher::SampleFilter;
use crate::policy::{AccessCtx, PolicyKind, ReplacementPolicy};
use talus_core::MissCurve;

/// One sampled shadow monitor: a small cache modelling a larger one.
#[derive(Debug)]
struct Point {
    modeled_lines: u64,
    filter: SampleFilter,
    cache: SetAssocCache<Box<dyn ReplacementPolicy>>,
}

/// A bank of sampled monitors producing an N-point miss curve for an
/// arbitrary replacement policy.
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{CurveSampler, Monitor};
/// use talus_sim::policy::PolicyKind;
/// use talus_sim::LineAddr;
/// let sizes: Vec<u64> = (1..=8).map(|i| i * 512).collect();
/// let mut s = CurveSampler::new(PolicyKind::Srrip, &sizes, 512, 16, 42);
/// for i in 0..200_000u64 {
///     s.record(LineAddr(i % 1500));
/// }
/// let curve = s.curve();
/// assert!(curve.value_at(512.0) > curve.value_at(4096.0));
/// ```
#[derive(Debug)]
pub struct CurveSampler {
    points: Vec<Point>,
    accesses: u64,
}

impl CurveSampler {
    /// Creates one monitor per entry of `modeled_sizes` (lines, sorted
    /// ascending). Each monitor is a `monitor_lines`-line, `ways`-way cache
    /// running a fresh instance of `policy`; sizes smaller than
    /// `monitor_lines` get an exact unsampled mini-cache instead.
    ///
    /// # Panics
    ///
    /// Panics if `modeled_sizes` is empty or unsorted, or if geometry is
    /// invalid.
    pub fn new(
        policy: PolicyKind,
        modeled_sizes: &[u64],
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self {
        Self::with_policy(
            |s| policy.build(s),
            modeled_sizes,
            monitor_lines,
            ways,
            seed,
        )
    }

    /// Like [`new`](Self::new), but for *custom* policies: `factory` is
    /// called once per monitor with a distinct seed and returns a fresh
    /// policy instance. This is the hook downstream code uses to measure
    /// miss curves — and therefore run Talus — on policies this crate has
    /// never heard of (see the `custom_policy` example).
    ///
    /// # Panics
    ///
    /// Panics if `modeled_sizes` is empty or unsorted, or if geometry is
    /// invalid.
    pub fn with_policy<F>(
        factory: F,
        modeled_sizes: &[u64],
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self
    where
        F: Fn(u64) -> Box<dyn ReplacementPolicy>,
    {
        assert!(!modeled_sizes.is_empty(), "need at least one modelled size");
        assert!(
            modeled_sizes.windows(2).all(|w| w[0] < w[1]),
            "modelled sizes must be strictly increasing"
        );
        let points = modeled_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                let size = size.max(ways as u64);
                let (cap, ratio) = if size <= monitor_lines {
                    (size / ways as u64 * ways as u64, 1u64)
                } else {
                    // ρ = monitor/size rounded so capacity stays aligned.
                    let ratio = size.div_ceil(monitor_lines);
                    (monitor_lines, ratio)
                };
                let cap = cap.max(ways as u64);
                Point {
                    modeled_lines: cap * ratio,
                    filter: SampleFilter::new(ratio, seed.wrapping_add(i as u64 * 7919)),
                    cache: SetAssocCache::new(
                        cap,
                        ways,
                        factory(seed.wrapping_add(i as u64)),
                        seed.wrapping_add(1000 + i as u64),
                    ),
                }
            })
            .collect();
        CurveSampler {
            points,
            accesses: 0,
        }
    }

    /// Number of monitors (curve points, excluding the origin).
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The hardware cost of this bank in monitor lines (for the §VI-C
    /// overhead discussion).
    pub fn monitor_lines_total(&self) -> u64 {
        self.points.iter().map(|p| p.cache.capacity_lines()).sum()
    }

    /// The cache sizes (in lines) this bank models, ascending.
    pub fn modeled_sizes(&self) -> Vec<u64> {
        self.points.iter().map(|p| p.modeled_lines).collect()
    }
}

impl Monitor for CurveSampler {
    fn record(&mut self, line: LineAddr) {
        self.accesses += 1;
        let ctx = AccessCtx::new();
        for p in &mut self.points {
            if p.filter.accepts(line) {
                p.cache.access(line, &ctx);
            }
        }
    }

    fn curve(&self) -> MissCurve {
        let mut sizes = vec![0.0f64];
        let mut misses = vec![1.0f64];
        for p in &self.points {
            let s = p.cache.stats();
            let rate = if s.accesses() == 0 {
                1.0
            } else {
                s.miss_rate()
            };
            // Guard against duplicate modelled sizes after rounding.
            if sizes.last().copied() != Some(p.modeled_lines as f64) {
                sizes.push(p.modeled_lines as f64);
                misses.push(rate);
            }
        }
        MissCurve::from_samples(&sizes, &misses).expect("sizes are increasing")
    }

    fn sampled_accesses(&self) -> u64 {
        self.accesses
    }

    fn reset(&mut self) {
        for p in &mut self.points {
            p.cache.reset_stats();
        }
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::{scan_stream, uniform_stream};

    #[test]
    fn sampler_builds_requested_points() {
        let sizes: Vec<u64> = vec![256, 512, 1024, 2048];
        let s = CurveSampler::new(PolicyKind::Lru, &sizes, 256, 16, 1);
        assert_eq!(s.num_points(), 4);
        assert!(s.monitor_lines_total() <= 4 * 256);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn sampler_rejects_unsorted_sizes() {
        CurveSampler::new(PolicyKind::Lru, &[512, 256], 256, 16, 1);
    }

    #[test]
    fn lru_sampler_matches_mattson() {
        use crate::monitor::MattsonMonitor;
        let stream = uniform_stream(1500, 500_000, 21);
        let sizes: Vec<u64> = (1..=8).map(|i| i * 512).collect();
        let mut s = CurveSampler::new(PolicyKind::Lru, &sizes, 512, 16, 2);
        let mut m = MattsonMonitor::new(4096);
        for &l in &stream {
            s.record(l);
            m.record(l);
        }
        let cs = s.curve();
        let cm = m.curve_on_grid(&sizes);
        for &size in &sizes {
            let a = cs.value_at(size as f64);
            let b = cm.value_at(size as f64);
            assert!(
                (a - b).abs() < 0.10,
                "size {size}: sampler {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn srrip_shares_lru_cliff_but_brrip_resists() {
        // Pure cyclic scan over 3000 lines at 1024 lines of cache. SRRIP
        // inserts everything at "long" and, with no hits to promote, ages
        // into FIFO behaviour — it thrashes exactly like LRU. (This is why
        // the paper's Fig. 9 shows Talus removing SRRIP's libquantum cliff
        // too.) BRRIP's bimodal insertion keeps a resident fraction and
        // escapes the cliff.
        let stream = scan_stream(3000, 600_000);
        let sizes = vec![1024u64];
        let mut srrip = CurveSampler::new(PolicyKind::Srrip, &sizes, 1024, 16, 3);
        let mut brrip = CurveSampler::new(PolicyKind::Brrip, &sizes, 1024, 16, 3);
        let mut lru = CurveSampler::new(PolicyKind::Lru, &sizes, 1024, 16, 3);
        for &l in &stream {
            srrip.record(l);
            brrip.record(l);
            lru.record(l);
        }
        let ms = srrip.curve().value_at(1024.0);
        let mb = brrip.curve().value_at(1024.0);
        let ml = lru.curve().value_at(1024.0);
        assert!(ml > 0.95, "LRU thrashes: {ml}");
        assert!(ms > 0.95, "SRRIP thrashes on pure scans too: {ms}");
        assert!(mb < 0.9, "BRRIP protects part of the loop: {mb}");
    }

    #[test]
    fn sampled_point_approximates_unsampled_cache() {
        use crate::array::{CacheModel, SetAssocCache};
        use crate::policy::Srrip;
        // Theorem 4 applied to monitors: a 512-line monitor at ratio 4
        // should track a real 2048-line cache.
        let stream = uniform_stream(3000, 800_000, 33);
        let mut s = CurveSampler::new(PolicyKind::Srrip, &[2048], 512, 16, 4);
        let mut real = SetAssocCache::new(2048, 16, Srrip::new(), 5);
        let ctx = AccessCtx::new();
        for &l in &stream {
            s.record(l);
            real.access(l, &ctx);
        }
        let est = s.curve().value_at(2048.0);
        let act = real.stats().miss_rate();
        assert!((est - act).abs() < 0.08, "estimated {est} vs actual {act}");
    }

    #[test]
    fn reset_zeroes_accesses() {
        let mut s = CurveSampler::new(PolicyKind::Lru, &[256], 256, 16, 1);
        for &l in &uniform_stream(100, 1000, 3) {
            s.record(l);
        }
        s.reset();
        assert_eq!(s.sampled_accesses(), 0);
    }
}
