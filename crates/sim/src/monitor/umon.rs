//! Utility monitors (UMONs), after Qureshi & Patt [36].
//!
//! A UMON is a small auxiliary tag array: `sets × ways` LRU stacks fed by a
//! pseudo-random sample of the access stream, with one hit counter per way
//! (stack depth). Because LRU obeys the stack property, way `k`'s counter
//! accumulates hits that a cache of `k/W` of the modelled capacity would
//! capture, so one array yields a whole `W`-point miss curve.
//!
//! The paper (§VI-C) pairs the conventional UMON (modelling the LLC size)
//! with a second monitor sampling 16× more sparsely, which by Theorem 4
//! models 4× the LLC capacity with 16 ways — needed to see past cliffs
//! beyond the LLC size (e.g. libquantum's at 32 MB). [`UmonPair`] mirrors
//! that arrangement.

use super::Monitor;
use crate::addr::LineAddr;
use crate::hasher::{H3Hasher, SampleFilter};
use talus_core::MissCurve;

/// A single utility monitor.
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{Monitor, Umon};
/// use talus_sim::LineAddr;
/// // Model a 4096-line cache with a 16-set × 64-way monitor.
/// let mut u = Umon::new(4096, 16, 64, 42);
/// for i in 0..200_000u64 {
///     u.record(LineAddr(i % 2048)); // working set = half the modelled size
/// }
/// let curve = u.curve();
/// assert!(curve.value_at(1024.0) > 0.3); // half the WS doesn't fit
/// assert!(curve.value_at(4096.0) < 0.1); // full WS fits
/// ```
#[derive(Debug, Clone)]
pub struct Umon {
    /// LRU stacks, MRU first: `stacks[set]` holds up to `ways` tags.
    stacks: Vec<Vec<u64>>,
    ways: usize,
    /// Hit counter per stack depth (0 = MRU).
    way_hits: Vec<u64>,
    misses: u64,
    sampled: u64,
    /// Each monitored line stands for `lines_per_entry` lines of the
    /// modelled cache.
    lines_per_entry: u64,
    filter: SampleFilter,
    set_hasher: H3Hasher,
}

impl Umon {
    /// Creates a UMON modelling a cache of `modeled_lines` using a
    /// `monitor_sets × ways` tag array. The sampling ratio is derived as
    /// `modeled_lines / (monitor_sets × ways)`, rounded up to at least 1.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(modeled_lines: u64, monitor_sets: usize, ways: usize, seed: u64) -> Self {
        assert!(modeled_lines > 0, "modelled capacity must be positive");
        assert!(
            monitor_sets > 0 && ways > 0,
            "monitor geometry must be positive"
        );
        let entries = (monitor_sets * ways) as u64;
        let ratio = modeled_lines.div_ceil(entries);
        Umon {
            stacks: vec![Vec::with_capacity(ways); monitor_sets],
            ways,
            way_hits: vec![0; ways],
            misses: 0,
            sampled: 0,
            lines_per_entry: ratio,
            filter: SampleFilter::new(ratio.max(1), seed ^ 0xA5A5),
            set_hasher: H3Hasher::new(32, seed ^ 0x5A5A),
        }
    }

    /// The capacity (in lines) one full way of this monitor stands for.
    pub fn lines_per_way(&self) -> u64 {
        self.lines_per_entry * self.stacks.len() as u64
    }

    /// The total modelled capacity in lines.
    pub fn modeled_lines(&self) -> u64 {
        self.lines_per_way() * self.ways as u64
    }

    /// Raw curve points `(lines, misses-per-sampled-access)` at way
    /// granularity, starting at `(0, 1.0)`.
    pub fn curve_points(&self) -> Vec<(u64, f64)> {
        let total = self.sampled.max(1) as f64;
        let mut points = Vec::with_capacity(self.ways + 1);
        points.push((0, 1.0));
        let mut hits = 0u64;
        for k in 0..self.ways {
            hits += self.way_hits[k];
            points.push((
                (k as u64 + 1) * self.lines_per_way(),
                (self.sampled - hits) as f64 / total,
            ));
        }
        points
    }
}

impl Monitor for Umon {
    fn record(&mut self, line: LineAddr) {
        if !self.filter.accepts(line) {
            return;
        }
        self.sampled += 1;
        let set = (self.set_hasher.hash_line(line) % self.stacks.len() as u64) as usize;
        let stack = &mut self.stacks[set];
        let tag = line.value();
        match stack.iter().position(|&t| t == tag) {
            Some(depth) => {
                self.way_hits[depth] += 1;
                stack.remove(depth);
                stack.insert(0, tag);
            }
            None => {
                self.misses += 1;
                stack.insert(0, tag);
                stack.truncate(self.ways);
            }
        }
    }

    fn curve(&self) -> MissCurve {
        MissCurve::new(self.curve_points().into_iter().map(|(s, m)| (s as f64, m)))
            .expect("way-granularity points are sorted")
    }

    fn sampled_accesses(&self) -> u64 {
        self.sampled
    }

    fn reset(&mut self) {
        self.way_hits.fill(0);
        self.misses = 0;
        self.sampled = 0;
        // Tag stacks stay warm across intervals, like the hardware.
    }
}

/// The paper's two-monitor arrangement: a conventional UMON covering the
/// LLC size plus a 16×-sparser, 16-way monitor covering 4× the LLC size.
#[derive(Debug, Clone)]
pub struct UmonPair {
    near: Umon,
    far: Umon,
}

impl UmonPair {
    /// Creates the pair for an LLC of `llc_lines` using the paper's
    /// monitor dimensions (1K-entry, 64-way near monitor; 16-way far
    /// monitor at 16× sparser sampling ⇒ 4× coverage).
    pub fn new(llc_lines: u64, seed: u64) -> Self {
        Self::with_sets(llc_lines, 16, seed)
    }

    /// Creates the pair with `sets` monitor sets per array instead of the
    /// paper's 16. Scaled-down simulations use proportionally denser
    /// monitors so the per-interval sample counts (and therefore curve
    /// fidelity) match what the paper's full-scale monitors achieve.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn with_sets(llc_lines: u64, sets: usize, seed: u64) -> Self {
        UmonPair {
            near: Umon::new(llc_lines, sets, 64, seed),
            far: Umon::new(llc_lines * 4, sets, 16, seed.wrapping_add(1)),
        }
    }

    /// The largest capacity the pair can report on (4× the LLC).
    pub fn coverage_lines(&self) -> u64 {
        self.far.modeled_lines()
    }
}

impl Monitor for UmonPair {
    fn record(&mut self, line: LineAddr) {
        self.near.record(line);
        self.far.record(line);
    }

    fn curve(&self) -> MissCurve {
        // Merge: the near monitor is denser below the LLC size; the far
        // monitor extends beyond it.
        let llc = self.near.modeled_lines();
        let mut points = self.near.curve_points();
        for (s, m) in self.far.curve_points() {
            if s > llc {
                points.push((s, m));
            }
        }
        points.sort_by_key(|&(s, _)| s);
        points.dedup_by_key(|&mut (s, _)| s);
        MissCurve::new(points.into_iter().map(|(s, m)| (s as f64, m)))
            .expect("merged points are sorted and deduped")
    }

    fn sampled_accesses(&self) -> u64 {
        self.near.sampled_accesses()
    }

    fn reset(&mut self) {
        self.near.reset();
        self.far.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::{scan_stream, uniform_stream};

    #[test]
    fn umon_ratio_covers_modeled_size() {
        let u = Umon::new(16384, 16, 64, 1);
        assert!(u.modeled_lines() >= 16384);
        // 16*64 = 1024 entries → ratio 16.
        assert_eq!(u.lines_per_way(), 16 * 16);
    }

    #[test]
    fn umon_curve_tracks_working_set_knee() {
        // Working set of 1024 lines, monitor models 4096: the curve should
        // fall to ~0 by 1024 lines and be high below ~512.
        let mut u = Umon::new(4096, 32, 64, 7);
        for &l in &uniform_stream(1024, 400_000, 3) {
            u.record(l);
        }
        let c = u.curve();
        assert!(c.value_at(256.0) > 0.5, "at 256: {}", c.value_at(256.0));
        assert!(c.value_at(2048.0) < 0.1, "at 2048: {}", c.value_at(2048.0));
    }

    #[test]
    fn umon_matches_mattson_within_sampling_error() {
        use crate::monitor::MattsonMonitor;
        let stream = uniform_stream(2000, 600_000, 5);
        let mut u = Umon::new(4096, 64, 64, 9);
        let mut m = MattsonMonitor::new(4096);
        for &l in &stream {
            u.record(l);
            m.record(l);
        }
        let cu = u.curve();
        let cm = m.curve_on_grid(&(0..=64).map(|i| i * 64).collect::<Vec<_>>());
        for &s in &[512u64, 1024, 2048, 3072] {
            let a = cu.value_at(s as f64);
            let b = cm.value_at(s as f64);
            assert!((a - b).abs() < 0.08, "size {s}: umon {a} vs mattson {b}");
        }
    }

    #[test]
    fn umon_scan_cliff_visible() {
        // Scan over 2048 lines: near-1 miss rate below 2048, near-0 above.
        let mut u = Umon::new(4096, 64, 64, 11);
        for &l in &scan_stream(2048, 600_000) {
            u.record(l);
        }
        let c = u.curve();
        assert!(c.value_at(1024.0) > 0.9);
        assert!(c.value_at(3072.0) < 0.1);
    }

    #[test]
    fn umon_reset_keeps_tags_warm() {
        let mut u = Umon::new(1024, 16, 64, 3);
        for &l in &scan_stream(64, 10_000) {
            u.record(l);
        }
        u.reset();
        assert_eq!(u.sampled_accesses(), 0);
        for &l in &scan_stream(64, 5_000) {
            u.record(l);
        }
        // Still seeing the small working set as fitting.
        assert!(u.curve().value_at(1024.0) < 0.1);
    }

    #[test]
    fn pair_extends_coverage_past_llc() {
        let p = UmonPair::new(16384, 1);
        assert!(p.coverage_lines() >= 4 * 16384);
    }

    #[test]
    fn pair_sees_cliff_beyond_llc_size() {
        // LLC is 4096 lines; the scan is over 8192 — the cliff is invisible
        // to the near monitor but the far one captures it (the libquantum
        // scenario at monitor scale).
        let mut p = UmonPair::new(4096, 13);
        for &l in &scan_stream(8192, 800_000) {
            p.record(l);
        }
        let c = p.curve();
        assert!(c.max_size() >= 16384.0);
        assert!(
            c.value_at(4096.0) > 0.9,
            "below the cliff: {}",
            c.value_at(4096.0)
        );
        assert!(
            c.value_at(16000.0) < 0.15,
            "past the cliff: {}",
            c.value_at(16000.0)
        );
    }

    #[test]
    fn pair_curve_is_sorted_and_starts_at_zero() {
        let mut p = UmonPair::new(1024, 3);
        for &l in &uniform_stream(512, 50_000, 1) {
            p.record(l);
        }
        let c = p.curve();
        assert_eq!(c.min_size(), 0.0);
        assert_eq!(c.value_at(0.0), 1.0);
    }
}
