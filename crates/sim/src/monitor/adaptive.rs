//! Adaptive multi-monitor curve sampling — the §VI-C future-work design.
//!
//! The paper's fixed [`CurveSampler`] bank needs one monitor per curve
//! point (64 × 4 KB per core for SRRIP — "too large to be practical") and
//! closes with: *"Perhaps future implementations can reduce overheads by
//! using fewer monitors and dynamically adapting sampling rates."* This
//! module implements that suggestion.
//!
//! [`AdaptiveCurveSampler`] runs a small bank (8–16 monitors). At every
//! interval boundary ([`reset`](Monitor::reset)) it inspects the curve it
//! just measured and **re-aims** the bank for the next interval:
//!
//! - a fixed backbone (first/last monitor plus a sparse geometric ladder)
//!   keeps full-range coverage so new cliffs are never invisible;
//! - the remaining monitors move next to the convex-hull *vertices* of
//!   the last curve — the only points Talus's planner actually anchors
//!   on (α and β are always hull vertices, Theorem 6).
//!
//! Re-aiming a monitor changes its sampling ratio, so its tag array
//! restarts cold — exactly what reprogramming a hardware sampling rate
//! would do. The curve returned for a just-re-aimed interval is therefore
//! slightly noisier; in exchange, an 8-monitor adaptive bank tracks the
//! planning quality of a 64-monitor fixed bank at an eighth of the state
//! (see the `ablate` monitor experiment and `adaptive_matches_fixed_bank`
//! tests).
//!
//! [`CurveSampler`]: super::CurveSampler

use super::{CurveSampler, Monitor};
use crate::addr::LineAddr;
use crate::policy::{AnyPolicy, PolicyKind, ReplacementPolicy};
use talus_core::MissCurve;

/// Builds fresh policy instances for the bank's monitors. Built-in kinds
/// ([`AdaptiveCurveSampler::from_kind`]) produce statically dispatched
/// variants; custom factories wrap their boxes in [`AnyPolicy::Custom`].
type PolicyFactory = Box<dyn Fn(u64) -> AnyPolicy>;

/// A self-re-aiming bank of sampled monitors.
///
/// # Examples
///
/// ```
/// use talus_sim::monitor::{AdaptiveCurveSampler, Monitor};
/// use talus_sim::policy::{ReplacementPolicy, Srrip};
/// use talus_sim::LineAddr;
/// let mut bank = AdaptiveCurveSampler::new(
///     |_seed| Box::new(Srrip::new()) as Box<dyn ReplacementPolicy>,
///     8,     // monitors
///     8192,  // span (lines)
///     512,   // lines per monitor
///     16,    // ways
///     42,
/// );
/// for i in 0..100_000u64 {
///     bank.record(LineAddr(i % 3000));
/// }
/// bank.reset(); // interval boundary: the bank re-aims itself
/// assert_eq!(bank.modeled_sizes().last(), Some(&8192));
/// ```
pub struct AdaptiveCurveSampler {
    factory: PolicyFactory,
    bank: CurveSampler,
    num_monitors: usize,
    span_lines: u64,
    monitor_lines: u64,
    ways: usize,
    seed: u64,
    intervals: u64,
}

impl std::fmt::Debug for AdaptiveCurveSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveCurveSampler")
            .field("num_monitors", &self.num_monitors)
            .field("span_lines", &self.span_lines)
            .field("intervals", &self.intervals)
            .finish_non_exhaustive()
    }
}

impl AdaptiveCurveSampler {
    /// Creates a bank of `num_monitors` monitors covering sizes up to
    /// `span_lines` (use ≥ 2× the cache so cliffs past the LLC stay
    /// visible, as with the paper's sampled UMON).
    ///
    /// `factory` is called with a distinct seed per monitor and must
    /// return a fresh replacement-policy instance.
    ///
    /// # Panics
    ///
    /// Panics if `num_monitors < 4` (the backbone needs endpoints plus at
    /// least two interior points) or geometry is invalid.
    pub fn new<F>(
        factory: F,
        num_monitors: usize,
        span_lines: u64,
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self
    where
        F: Fn(u64) -> Box<dyn ReplacementPolicy> + 'static,
    {
        Self::with_any_policy(
            move |s| AnyPolicy::Custom(factory(s)),
            num_monitors,
            span_lines,
            monitor_lines,
            ways,
            seed,
        )
    }

    /// Like [`new`](Self::new) for a built-in [`PolicyKind`]: the bank's
    /// monitors run statically dispatched policy code (no virtual calls
    /// on the record path).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`new`](Self::new).
    pub fn from_kind(
        kind: PolicyKind,
        num_monitors: usize,
        span_lines: u64,
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self {
        Self::with_any_policy(
            move |s| kind.build_any(s),
            num_monitors,
            span_lines,
            monitor_lines,
            ways,
            seed,
        )
    }

    fn with_any_policy<F>(
        factory: F,
        num_monitors: usize,
        span_lines: u64,
        monitor_lines: u64,
        ways: usize,
        seed: u64,
    ) -> Self
    where
        F: Fn(u64) -> AnyPolicy + 'static,
    {
        assert!(
            num_monitors >= 4,
            "need at least 4 monitors (2 endpoints + 2 interior)"
        );
        assert!(
            span_lines >= num_monitors as u64,
            "span too small for the bank"
        );
        let factory: PolicyFactory = Box::new(factory);
        let sizes = geometric_ladder(span_lines, num_monitors, ways as u64);
        let bank = CurveSampler::with_any_policy(&factory, &sizes, monitor_lines, ways, seed);
        AdaptiveCurveSampler {
            factory,
            bank,
            num_monitors,
            span_lines,
            monitor_lines,
            ways,
            seed,
            intervals: 0,
        }
    }

    /// The sizes (in lines) the bank currently models.
    pub fn modeled_sizes(&self) -> Vec<u64> {
        self.bank.modeled_sizes()
    }

    /// Total monitor lines — the hardware cost being saved vs a fixed
    /// 64-point bank.
    pub fn monitor_lines_total(&self) -> u64 {
        self.bank.monitor_lines_total()
    }

    /// Re-aims the bank: keep a sparse geometric backbone, pack the rest
    /// of the monitors into the *brackets* below the hull vertices of
    /// `curve` — a vertex's own position is already measured; the cliff
    /// edge that produced it lies somewhere in the gap between the vertex
    /// and the next measured point below, so that gap is where extra
    /// resolution pays.
    fn retarget(&mut self, curve: &MissCurve) {
        let hull = curve.convex_hull();
        let backbone = self.num_monitors / 2;
        let mut sizes = geometric_ladder(self.span_lines, backbone.max(2), self.ways as u64);
        // Interior hull vertices, ascending.
        let mut wanted: Vec<u64> = hull
            .vertices()
            .iter()
            .map(|v| v.size as u64)
            .filter(|&s| s > 0 && s < self.span_lines)
            .collect();
        wanted.sort_unstable();
        wanted.dedup();
        // For each vertex, find its measured predecessor and trisect the
        // bracket (two probes), then keep the vertex itself.
        let mut refine = Vec::new();
        for &v in wanted.iter().rev() {
            let prev = curve
                .points()
                .iter()
                .map(|p| p.size as u64)
                .filter(|&s| s < v)
                .max()
                .unwrap_or(0);
            let gap = v - prev;
            if gap >= 3 {
                refine.push(prev + gap / 3);
                refine.push(prev + 2 * gap / 3);
            }
            refine.push(v);
        }
        for r in refine {
            if sizes.len() >= self.num_monitors {
                break;
            }
            sizes.push(r);
        }
        sizes.sort_unstable();
        sizes.dedup();
        // Round to way multiples and dedup again (CurveSampler needs a
        // strictly increasing list).
        let ways = self.ways as u64;
        let mut rounded: Vec<u64> = sizes.iter().map(|&s| (s / ways).max(1) * ways).collect();
        rounded.sort_unstable();
        rounded.dedup();
        self.seed = self.seed.wrapping_add(0x9E37_79B9);
        self.bank = CurveSampler::with_any_policy(
            &self.factory,
            &rounded,
            self.monitor_lines,
            self.ways,
            self.seed,
        );
    }
}

/// A geometric ladder of `n` sizes from `span/2^(n-1)` up to `span`,
/// rounded to way multiples and strictly increasing.
fn geometric_ladder(span: u64, n: usize, ways: u64) -> Vec<u64> {
    let mut sizes: Vec<u64> = (0..n)
        .map(|i| {
            let s = span as f64 / 2f64.powi((n - 1 - i) as i32);
            ((s as u64) / ways).max(1) * ways
        })
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

impl Monitor for AdaptiveCurveSampler {
    fn record(&mut self, line: LineAddr) {
        self.bank.record(line);
    }

    fn record_block(&mut self, lines: &[LineAddr]) {
        // Delegate to the bank's point-major block path (intervals only
        // end at reset(), so a block never straddles a re-aim).
        self.bank.record_block(lines);
    }

    fn curve(&self) -> MissCurve {
        self.bank.curve()
    }

    fn sampled_accesses(&self) -> u64 {
        self.bank.sampled_accesses()
    }

    fn reset(&mut self) {
        // Interval boundary: adapt before forgetting. The first interval
        // keeps the backbone (nothing learned yet).
        self.intervals += 1;
        let curve = self.bank.curve();
        if self.bank.sampled_accesses() > 0 {
            self.retarget(&curve);
        } else {
            self.bank.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::test_support::scan_stream;
    use crate::policy::{ReplacementPolicy, Srrip};

    fn srrip_factory() -> impl Fn(u64) -> Box<dyn ReplacementPolicy> + 'static {
        |_s| Box::new(Srrip::new()) as Box<dyn ReplacementPolicy>
    }

    #[test]
    fn starts_on_a_geometric_backbone() {
        let a = AdaptiveCurveSampler::new(srrip_factory(), 8, 8192, 512, 16, 1);
        let sizes = a.modeled_sizes();
        assert_eq!(*sizes.last().unwrap(), 8192);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn retargets_toward_hull_vertices() {
        // A scan over 3000 lines: the cliff (hull vertex) sits at 3000,
        // between backbone rungs 2048 and 4096. After one interval the
        // bank should have moved a monitor near it.
        let mut a = AdaptiveCurveSampler::new(srrip_factory(), 8, 8192, 512, 16, 1);
        for l in scan_stream(3000, 400_000) {
            a.record(l);
        }
        a.reset();
        let sizes = a.modeled_sizes();
        let nearest = sizes
            .iter()
            .map(|&s| (s as i64 - 3000).unsigned_abs())
            .min()
            .unwrap();
        assert!(
            nearest < 600,
            "no monitor near the 3000-line cliff: {sizes:?}"
        );
        // Coverage endpoint survives adaptation.
        assert_eq!(*sizes.last().unwrap(), 8192);
    }

    #[test]
    fn adaptive_matches_fixed_bank_at_an_eighth_of_the_cost() {
        // Planning quality: the hull value at a plateau size from an
        // 8-monitor adaptive bank vs a 64-monitor fixed bank.
        let stream: Vec<_> = scan_stream(3000, 600_000);
        let mut adaptive = AdaptiveCurveSampler::new(srrip_factory(), 8, 8192, 512, 16, 1);
        let sizes: Vec<u64> = (1..=64).map(|i| i * 8192 / 64).collect();
        let mut fixed = CurveSampler::with_policy(
            |_s| Box::new(Srrip::new()) as Box<dyn ReplacementPolicy>,
            &sizes,
            512,
            16,
            1,
        );
        // Two intervals: the adaptive bank re-aims after the first.
        for &l in &stream {
            adaptive.record(l);
            fixed.record(l);
        }
        adaptive.reset();
        fixed.reset();
        for &l in &stream {
            adaptive.record(l);
            fixed.record(l);
        }
        let target = 2048.0; // on the plateau, below the 3000-line cliff
        let ha = adaptive.curve().convex_hull().value_at(target);
        let hf = fixed.curve().convex_hull().value_at(target);
        assert!(
            (ha - hf).abs() < 0.12,
            "adaptive hull {ha:.3} vs fixed hull {hf:.3} at {target}"
        );
        assert!(
            adaptive.monitor_lines_total() * 4 <= fixed.monitor_lines_total(),
            "adaptive bank should be much smaller: {} vs {}",
            adaptive.monitor_lines_total(),
            fixed.monitor_lines_total()
        );
    }

    #[test]
    fn first_reset_without_traffic_is_safe() {
        let mut a = AdaptiveCurveSampler::new(srrip_factory(), 8, 8192, 512, 16, 1);
        a.reset();
        assert_eq!(a.sampled_accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 4 monitors")]
    fn rejects_tiny_banks() {
        AdaptiveCurveSampler::new(srrip_factory(), 2, 8192, 512, 16, 1);
    }
}
