//! Access statistics: hit/miss counters and derived rates.

/// The outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent (and, unless bypassed, has been inserted).
    Miss,
}

impl AccessResult {
    /// Whether this is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Whether this is a miss.
    pub fn is_miss(self) -> bool {
        matches!(self, AccessResult::Miss)
    }
}

/// Hit/miss counters for a cache or partition.
///
/// # Examples
///
/// ```
/// use talus_sim::{AccessResult, CacheStats};
/// let mut s = CacheStats::new();
/// s.record(AccessResult::Hit);
/// s.record(AccessResult::Miss);
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    hits: u64,
    misses: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records one access outcome.
    #[inline]
    pub fn record(&mut self, result: AccessResult) {
        match result {
            AccessResult::Hit => self.hits += 1,
            AccessResult::Miss => self.misses += 1,
        }
    }

    /// Records a whole block's outcomes at once (the batched access paths
    /// tally hits locally and fold them in here).
    #[inline]
    pub fn record_block(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Number of hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Misses per access in `[0, 1]`; zero if nothing was recorded.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Hits per access in `[0, 1]`; zero if nothing was recorded.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Misses per kilo-instruction given how many instructions the
    /// recorded window covers.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn mpki(&self, instructions: u64) -> f64 {
        assert!(instructions > 0, "instruction count must be positive");
        self.misses as f64 * 1000.0 / instructions as f64
    }

    /// Resets all counters to zero (used at reconfiguration interval
    /// boundaries).
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }

    /// Adds another window's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_result_predicates() {
        assert!(AccessResult::Hit.is_hit());
        assert!(!AccessResult::Hit.is_miss());
        assert!(AccessResult::Miss.is_miss());
        assert!(!AccessResult::Miss.is_hit());
    }

    #[test]
    fn rates_on_empty_stats_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn record_and_rates() {
        let mut s = CacheStats::new();
        for _ in 0..3 {
            s.record(AccessResult::Hit);
        }
        s.record(AccessResult::Miss);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.miss_rate(), 0.25);
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn mpki_scales_by_instructions() {
        let mut s = CacheStats::new();
        for _ in 0..50 {
            s.record(AccessResult::Miss);
        }
        assert_eq!(s.mpki(10_000), 5.0);
    }

    #[test]
    #[should_panic(expected = "instruction count")]
    fn mpki_rejects_zero_instructions() {
        CacheStats::new().mpki(0);
    }

    #[test]
    fn reset_and_merge() {
        let mut a = CacheStats::new();
        a.record(AccessResult::Hit);
        let mut b = CacheStats::new();
        b.record(AccessResult::Miss);
        b.record(AccessResult::Miss);
        a.merge(&b);
        assert_eq!(a.accesses(), 3);
        a.reset();
        assert_eq!(a.accesses(), 0);
    }
}
