//! Addressing: cache lines and capacity arithmetic.
//!
//! The simulator operates at cache-line granularity, as last-level caches
//! do. Byte addresses from workload generators are converted to
//! [`LineAddr`]s once at the edge; everything downstream works in lines.

use std::fmt;

/// Size of a cache line in bytes (Table I: 64 B lines).
pub const LINE_BYTES: u64 = 64;

/// A cache-line address: a byte address with the line-offset bits removed.
///
/// Newtype so that line addresses, set indices, and raw byte addresses can
/// never be mixed up.
///
/// # Examples
///
/// ```
/// use talus_sim::LineAddr;
/// let a = LineAddr::from_byte_addr(0x1040);
/// let b = LineAddr::from_byte_addr(0x107F);
/// assert_eq!(a, b); // same 64-byte line
/// assert_ne!(a, LineAddr::from_byte_addr(0x1080));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Converts a byte address to its line address.
    pub fn from_byte_addr(byte_addr: u64) -> Self {
        LineAddr(byte_addr / LINE_BYTES)
    }

    /// The raw line number.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    /// Interprets the value as a line number (not a byte address).
    fn from(line: u64) -> Self {
        LineAddr(line)
    }
}

/// Converts a capacity in bytes to whole cache lines (rounding down).
///
/// # Examples
///
/// ```
/// use talus_sim::{bytes_to_lines, LINE_BYTES};
/// assert_eq!(bytes_to_lines(1 << 20), (1 << 20) / LINE_BYTES); // 1 MB
/// ```
pub fn bytes_to_lines(bytes: u64) -> u64 {
    bytes / LINE_BYTES
}

/// Converts a capacity in cache lines to bytes.
pub fn lines_to_bytes(lines: u64) -> u64 {
    lines * LINE_BYTES
}

/// Converts a capacity in cache lines to megabytes (floating point), the
/// unit the paper's figures use on their x-axes.
pub fn lines_to_mb(lines: u64) -> f64 {
    (lines * LINE_BYTES) as f64 / (1024.0 * 1024.0)
}

/// Converts megabytes to cache lines (rounding to nearest line).
pub fn mb_to_lines(mb: f64) -> u64 {
    (mb * 1024.0 * 1024.0 / LINE_BYTES as f64).round() as u64
}

/// A partition identifier within a partitioned cache.
///
/// Partitions are dense indices assigned by the cache's constructor;
/// logical (software-visible) partitions and Talus's hidden shadow
/// partitions both use this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition {}", self.0)
    }
}

impl From<u32> for PartitionId {
    fn from(v: u32) -> Self {
        PartitionId(v)
    }
}

/// A hardware thread (core) identifier, used by thread-aware policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread {}", self.0)
    }
}

impl From<u16> for ThreadId {
    fn from(v: u16) -> Self {
        ThreadId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_strips_offset_bits() {
        assert_eq!(LineAddr::from_byte_addr(0), LineAddr(0));
        assert_eq!(LineAddr::from_byte_addr(63), LineAddr(0));
        assert_eq!(LineAddr::from_byte_addr(64), LineAddr(1));
        assert_eq!(LineAddr::from_byte_addr(65), LineAddr(1));
    }

    #[test]
    fn capacity_round_trips() {
        assert_eq!(bytes_to_lines(lines_to_bytes(12345)), 12345);
        assert_eq!(mb_to_lines(1.0), 16384);
        assert!((lines_to_mb(16384) - 1.0).abs() < 1e-12);
        assert_eq!(mb_to_lines(lines_to_mb(524288)), 524288); // 32 MB
    }

    #[test]
    fn ids_display_and_index() {
        assert_eq!(PartitionId(3).index(), 3);
        assert_eq!(ThreadId(7).index(), 7);
        assert_eq!(PartitionId(3).to_string(), "partition 3");
        assert_eq!(ThreadId(7).to_string(), "thread 7");
        assert_eq!(LineAddr(16).to_string(), "line 0x10");
    }

    #[test]
    fn conversions_from_raw() {
        assert_eq!(LineAddr::from(9u64), LineAddr(9));
        assert_eq!(PartitionId::from(2u32), PartitionId(2));
        assert_eq!(ThreadId::from(1u16), ThreadId(1));
    }
}
