//! Way partitioning: each partition owns a subset of the ways in every set.
//!
//! The classic scheme (Albonesi; Chiou et al.): simple, but allocations are
//! quantised to whole ways and associativity degrades as partitions shrink
//! — precisely the Assumption-2 violation the paper calls out in §VI-B and
//! corrects by recomputing ρ from the coarsened sizes.

use super::{apportion, PartitionedCacheModel};
use crate::addr::{LineAddr, PartitionId};
use crate::hasher::H3Hasher;
use crate::policy::{AccessCtx, ReplacementPolicy};
use crate::stats::{AccessResult, CacheStats};

const INVALID_TAG: u64 = u64::MAX;

/// A way-partitioned set-associative cache.
///
/// Lookups search every way (partitioning constrains *insertion*, not
/// residency), so a line cached while owned by one partition still hits
/// when the ways are later reassigned; the new owner's insertions evict it
/// naturally.
///
/// # Examples
///
/// ```
/// use talus_sim::part::{PartitionedCacheModel, WayPartitioned};
/// use talus_sim::policy::Lru;
/// use talus_sim::{AccessCtx, LineAddr, PartitionId};
///
/// // 2048 lines, 16 ways, two partitions.
/// let mut cache = WayPartitioned::new(2048, 16, 2, Lru::new(), 7);
/// let granted = cache.set_partition_sizes(&[512, 1536]);
/// assert_eq!(granted, vec![512, 1536]); // 4 and 12 ways exactly
/// let ctx = AccessCtx::new();
/// cache.access(PartitionId(0), LineAddr(3), &ctx);
/// assert_eq!(cache.partition_stats(PartitionId(0)).misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WayPartitioned<P> {
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    /// `way_owner[w]` = partition owning way `w` (same in every set), or
    /// `u32::MAX` for unassigned ways.
    way_owner: Vec<u32>,
    /// Cached candidate lists per partition.
    own_ways: Vec<Vec<usize>>,
    policy: P,
    hasher: H3Hasher,
    stats: Vec<CacheStats>,
}

impl<P: ReplacementPolicy> WayPartitioned<P> {
    /// Builds a way-partitioned cache of `capacity_lines` with the given
    /// associativity and number of partitions. Initially all ways are
    /// unassigned; call
    /// [`set_partition_sizes`](PartitionedCacheModel::set_partition_sizes)
    /// before use (unsized partitions bypass).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of `ways`, or if
    /// `partitions` is zero.
    pub fn new(
        capacity_lines: u64,
        ways: usize,
        partitions: usize,
        mut policy: P,
        seed: u64,
    ) -> Self {
        assert!(capacity_lines > 0, "capacity must be positive");
        assert!(ways > 0, "associativity must be positive");
        assert!(partitions > 0, "partition count must be positive");
        assert!(
            capacity_lines.is_multiple_of(ways as u64),
            "capacity must be a multiple of ways"
        );
        let sets = (capacity_lines / ways as u64) as usize;
        policy.attach(sets, ways);
        WayPartitioned {
            sets,
            ways,
            tags: vec![INVALID_TAG; sets * ways],
            way_owner: vec![u32::MAX; ways],
            own_ways: vec![Vec::new(); partitions],
            policy,
            hasher: H3Hasher::new(32, seed),
            stats: vec![CacheStats::new(); partitions],
        }
    }

    /// Number of ways currently owned by a partition.
    pub fn ways_of(&self, part: PartitionId) -> usize {
        self.own_ways[part.index()].len()
    }

    fn set_of(&self, line: LineAddr) -> usize {
        if self.sets == 1 {
            0
        } else {
            (self.hasher.hash_line(line) % self.sets as u64) as usize
        }
    }

    /// One access with the partition index already validated; shared by
    /// the per-access and block paths (stats are recorded by the caller).
    #[inline]
    fn access_inner(&mut self, p: usize, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let set = self.set_of(line);
        let tag = line.value();
        let base = set * self.ways;
        let ctx = &ctx.with_line(line); // signature-based policies need the address
        if let Some(way) = (0..self.ways).find(|&w| self.tags[base + w] == tag) {
            self.policy.on_hit(set, way, ctx);
            AccessResult::Hit
        } else if self.own_ways[p].is_empty() {
            // Zero ways: bypass partition.
            AccessResult::Miss
        } else {
            let way = match self.own_ways[p]
                .iter()
                .copied()
                .find(|&w| self.tags[base + w] == INVALID_TAG)
            {
                Some(w) => w,
                None => self.policy.choose_victim(set, &self.own_ways[p]),
            };
            self.tags[base + way] = tag;
            self.policy.on_insert(set, way, ctx);
            AccessResult::Miss
        }
    }
}

impl<P: ReplacementPolicy> PartitionedCacheModel for WayPartitioned<P> {
    fn num_partitions(&self) -> usize {
        self.stats.len()
    }

    fn set_partition_sizes(&mut self, lines: &[u64]) -> Vec<u64> {
        assert_eq!(
            lines.len(),
            self.num_partitions(),
            "one request per partition"
        );
        let ways_per = apportion(lines, self.sets as u64, self.ways as u64);
        // Reassign way ownership: walk ways in order, handing each
        // partition its quota. Stable so small reallocations move few ways.
        self.way_owner.fill(u32::MAX);
        for v in &mut self.own_ways {
            v.clear();
        }
        let mut next_way = 0usize;
        for (p, &quota) in ways_per.iter().enumerate() {
            for _ in 0..quota {
                self.way_owner[next_way] = p as u32;
                self.own_ways[p].push(next_way);
                next_way += 1;
            }
        }
        ways_per.iter().map(|&w| w * self.sets as u64).collect()
    }

    fn access(&mut self, part: PartitionId, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        let result = self.access_inner(p, line, ctx);
        self.stats[p].record(result);
        result
    }

    fn access_block(&mut self, part: PartitionId, lines: &[LineAddr], ctx: &AccessCtx) {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        let mut hits = 0u64;
        for &line in lines {
            if self.access_inner(p, line, ctx) == AccessResult::Hit {
                hits += 1;
            }
        }
        self.stats[p].record_block(hits, lines.len() as u64 - hits);
    }

    fn partition_stats(&self, part: PartitionId) -> &CacheStats {
        &self.stats[part.index()]
    }

    fn reset_stats(&mut self) {
        for s in &mut self.stats {
            s.reset();
        }
    }

    fn capacity_lines(&self) -> u64 {
        (self.sets * self.ways) as u64
    }

    fn scheme_name(&self) -> &'static str {
        "way"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn sizes_round_to_whole_ways() {
        let mut c = WayPartitioned::new(1024, 16, 2, Lru::new(), 1);
        // 1024 lines / 16 ways = 64 lines per way. Request 100 and 900.
        let granted = c.set_partition_sizes(&[100, 900]);
        assert_eq!(granted.iter().sum::<u64>() % 64, 0);
        assert!(granted[0] == 64 || granted[0] == 128); // 1-2 ways
        assert!(granted[1] >= 832); // ~14 ways
        assert_eq!(c.ways_of(PartitionId(0)) + c.ways_of(PartitionId(1)), 16);
    }

    #[test]
    fn partitions_do_not_evict_each_other() {
        // Partition 0 gets 1 way, partition 1 gets 7. Partition 1's
        // traffic must not evict partition 0's single resident line per set.
        let mut c = WayPartitioned::new(8, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[1, 7]);
        c.access(PartitionId(0), LineAddr(42), &ctx());
        for i in 0..1000u64 {
            c.access(PartitionId(1), LineAddr(100 + i), &ctx());
        }
        assert!(c.access(PartitionId(0), LineAddr(42), &ctx()).is_hit());
    }

    #[test]
    fn zero_way_partition_bypasses() {
        let mut c = WayPartitioned::new(64, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[0, 512]);
        for _ in 0..3 {
            assert!(c.access(PartitionId(0), LineAddr(5), &ctx()).is_miss());
        }
        assert_eq!(c.partition_stats(PartitionId(0)).misses(), 3);
    }

    #[test]
    fn lookup_hits_across_partitions() {
        // A line inserted by partition 1 is still found by partition 0's
        // lookup (shared physical array).
        let mut c = WayPartitioned::new(64, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[256, 256]);
        c.access(PartitionId(1), LineAddr(9), &ctx());
        assert!(c.access(PartitionId(0), LineAddr(9), &ctx()).is_hit());
    }

    #[test]
    fn per_partition_stats_are_separate() {
        let mut c = WayPartitioned::new(64, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[256, 256]);
        c.access(PartitionId(0), LineAddr(1), &ctx());
        c.access(PartitionId(1), LineAddr(2), &ctx());
        c.access(PartitionId(1), LineAddr(2), &ctx());
        assert_eq!(c.partition_stats(PartitionId(0)).accesses(), 1);
        assert_eq!(c.partition_stats(PartitionId(1)).accesses(), 2);
        assert_eq!(c.total_stats().accesses(), 3);
        c.reset_stats();
        assert_eq!(c.total_stats().accesses(), 0);
    }

    #[test]
    fn reallocation_moves_capacity() {
        // 64-line cache: requests beyond capacity are capped at the full
        // 8 ways (64 lines).
        let mut c = WayPartitioned::new(64, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[64, 0]);
        assert_eq!(c.ways_of(PartitionId(0)), 8);
        let granted = c.set_partition_sizes(&[0, 64]);
        assert_eq!(granted, vec![0, 64]);
        assert_eq!(c.ways_of(PartitionId(0)), 0);
        assert_eq!(c.ways_of(PartitionId(1)), 8);
        // Oversubscribed requests are shaved to fit.
        let granted = c.set_partition_sizes(&[512, 512]);
        assert!(granted.iter().sum::<u64>() <= 64);
    }

    #[test]
    fn working_set_fits_when_partition_large_enough() {
        let mut c = WayPartitioned::new(512, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[256, 256]);
        // 128-line working set in a 256-line partition: after warmup, all hits.
        for _ in 0..4 {
            for i in 0..128u64 {
                c.access(PartitionId(0), LineAddr(i), &ctx());
            }
        }
        let s = c.partition_stats(PartitionId(0));
        assert!(s.hit_rate() > 0.70, "hit rate {}", s.hit_rate());
    }
}
