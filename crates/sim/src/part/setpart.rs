//! Set partitioning: each partition owns a contiguous range of sets.
//!
//! This is the scheme used by the paper's §III worked example (Fig. 2),
//! where a 4 MB cache is split by sets in a 1:2 ratio with accesses
//! distributed 1:2 between the ranges. Implementable in real systems via
//! page colouring or reconfigurable caches.

use super::{apportion, PartitionedCacheModel};
use crate::addr::{LineAddr, PartitionId};
use crate::hasher::H3Hasher;
use crate::policy::{AccessCtx, ReplacementPolicy};
use crate::stats::{AccessResult, CacheStats};

const INVALID_TAG: u64 = u64::MAX;

/// A set-partitioned cache: allocations are whole set ranges.
///
/// Resizing remaps partitions' set ranges; resident lines of shrunken
/// partitions are left behind and naturally evicted by the new owners
/// (real page-colouring systems behave the same way, modulo flushes).
#[derive(Debug, Clone)]
pub struct SetPartitioned<P> {
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    /// Per-partition [base, count) set ranges.
    ranges: Vec<(usize, usize)>,
    policy: P,
    hasher: H3Hasher,
    stats: Vec<CacheStats>,
    /// `[0, 1, …, ways-1]`, precomputed so a full-set eviction does not
    /// allocate a candidate vector on every miss.
    all_ways: Vec<usize>,
}

impl<P: ReplacementPolicy> SetPartitioned<P> {
    /// Builds a set-partitioned cache. All partitions start with zero sets
    /// (bypass); call
    /// [`set_partition_sizes`](PartitionedCacheModel::set_partition_sizes).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of `ways` or
    /// `partitions` is zero.
    pub fn new(
        capacity_lines: u64,
        ways: usize,
        partitions: usize,
        mut policy: P,
        seed: u64,
    ) -> Self {
        assert!(capacity_lines > 0, "capacity must be positive");
        assert!(ways > 0, "associativity must be positive");
        assert!(partitions > 0, "partition count must be positive");
        assert!(
            capacity_lines.is_multiple_of(ways as u64),
            "capacity must be a multiple of ways"
        );
        let sets = (capacity_lines / ways as u64) as usize;
        policy.attach(sets, ways);
        SetPartitioned {
            sets,
            ways,
            tags: vec![INVALID_TAG; sets * ways],
            ranges: vec![(0, 0); partitions],
            policy,
            hasher: H3Hasher::new(32, seed),
            stats: vec![CacheStats::new(); partitions],
            all_ways: (0..ways).collect(),
        }
    }

    /// One access against an already-resolved set range; shared by the
    /// per-access and block paths (stats are recorded by the caller).
    /// The probe itself is [`crate::array::probe_set`], the same
    /// single-pass body `SetAssocCache` runs.
    #[inline]
    fn access_inner(
        &mut self,
        base_set: usize,
        count: usize,
        line: LineAddr,
        ctx: &AccessCtx,
    ) -> AccessResult {
        let ctx = &ctx.with_line(line); // signature-based policies need the address
        if count == 0 {
            return AccessResult::Miss; // bypass partition
        }
        let set = base_set + (self.hasher.hash_line(line) % count as u64) as usize;
        crate::array::probe_set(
            &mut self.tags,
            &mut self.policy,
            set,
            self.ways,
            line.value(),
            &self.all_ways,
            ctx,
        )
    }

    /// The set range `[base, base+count)` currently owned by a partition.
    pub fn set_range(&self, part: PartitionId) -> (usize, usize) {
        self.ranges[part.index()]
    }
}

impl<P: ReplacementPolicy> PartitionedCacheModel for SetPartitioned<P> {
    fn num_partitions(&self) -> usize {
        self.stats.len()
    }

    fn set_partition_sizes(&mut self, lines: &[u64]) -> Vec<u64> {
        assert_eq!(
            lines.len(),
            self.num_partitions(),
            "one request per partition"
        );
        let sets_per = apportion(lines, self.ways as u64, self.sets as u64);
        let mut base = 0usize;
        for (p, &quota) in sets_per.iter().enumerate() {
            self.ranges[p] = (base, quota as usize);
            base += quota as usize;
        }
        sets_per.iter().map(|&s| s * self.ways as u64).collect()
    }

    fn access(&mut self, part: PartitionId, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        let (base_set, count) = self.ranges[p];
        let result = self.access_inner(base_set, count, line, ctx);
        self.stats[p].record(result);
        result
    }

    fn access_block(&mut self, part: PartitionId, lines: &[LineAddr], ctx: &AccessCtx) {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        // The set range is fixed for the whole block: resolve it once.
        let (base_set, count) = self.ranges[p];
        let mut hits = 0u64;
        for &line in lines {
            if self.access_inner(base_set, count, line, ctx) == AccessResult::Hit {
                hits += 1;
            }
        }
        self.stats[p].record_block(hits, lines.len() as u64 - hits);
    }

    fn partition_stats(&self, part: PartitionId) -> &CacheStats {
        &self.stats[part.index()]
    }

    fn reset_stats(&mut self) {
        for s in &mut self.stats {
            s.reset();
        }
    }

    fn capacity_lines(&self) -> u64 {
        (self.sets * self.ways) as u64
    }

    fn scheme_name(&self) -> &'static str {
        "set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn sizes_round_to_whole_sets() {
        let mut c = SetPartitioned::new(512, 8, 2, Lru::new(), 1);
        // 64 sets of 8 lines. Request 100 and 412 lines.
        let granted = c.set_partition_sizes(&[100, 412]);
        assert!(granted.iter().all(|g| g % 8 == 0));
        assert!(granted.iter().sum::<u64>() <= 512);
    }

    #[test]
    fn ranges_are_disjoint_and_ordered() {
        let mut c = SetPartitioned::new(512, 8, 3, Lru::new(), 1);
        c.set_partition_sizes(&[128, 128, 256]);
        let r0 = c.set_range(PartitionId(0));
        let r1 = c.set_range(PartitionId(1));
        let r2 = c.set_range(PartitionId(2));
        assert_eq!(r0.0 + r0.1, r1.0);
        assert_eq!(r1.0 + r1.1, r2.0);
        assert_eq!(r2.0 + r2.1, 64);
    }

    #[test]
    fn partitions_are_isolated() {
        let mut c = SetPartitioned::new(128, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[64, 64]);
        c.access(PartitionId(0), LineAddr(7), &ctx());
        for i in 0..500u64 {
            c.access(PartitionId(1), LineAddr(1000 + i), &ctx());
        }
        assert!(c.access(PartitionId(0), LineAddr(7), &ctx()).is_hit());
    }

    #[test]
    fn zero_set_partition_bypasses() {
        let mut c = SetPartitioned::new(128, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[0, 1024]);
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
    }

    #[test]
    fn small_partition_behaves_like_small_cache() {
        // Give partition 0 one set (8 lines): a 9-line cyclic scan thrashes.
        let mut c = SetPartitioned::new(128, 8, 2, Lru::new(), 1);
        c.set_partition_sizes(&[8, 120]);
        let mut misses = 0;
        for _ in 0..5 {
            for i in 0..9u64 {
                if c.access(PartitionId(0), LineAddr(i), &ctx()).is_miss() {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 45, "LRU thrashes a one-set partition");
    }
}
