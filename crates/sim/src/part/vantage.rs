//! Vantage-like fine-grained partitioning on a skew-associative array.
//!
//! Vantage (Sanchez & Kozyrakis, ISCA 2011) supports hundreds of partitions
//! sized at line granularity, enforced softly: partitions over their target
//! demote lines into a small *unmanaged region* (~10% of capacity) that
//! absorbs churn. The paper evaluates Talus primarily on Vantage over a
//! 4/52 **zcache**, whose high effective associativity (52 replacement
//! candidates drawn via different hash functions) is essential — it makes
//! a partition's usable capacity track its nominal size tightly
//! (Assumption 2).
//!
//! This implementation reproduces that behavioural contract (DESIGN.md):
//!
//! - a **skew-associative array**: each way indexes with its own H3 hash,
//!   so a line has `W` candidate slots in `W` different rows — the
//!   balls-into-bins "power of many choices" effect that gives zcaches
//!   their near-ideal associativity (without modelling relocation walks);
//! - **line-granularity targets** with per-partition occupancy tracking;
//! - **soft enforcement**: victims are drawn from the partition(s) with
//!   the highest occupancy-to-target ratio among the candidates — the
//!   demotion-from-over-budget-partitions analogue;
//! - a configurable **unmanaged fraction** that scales effective targets
//!   (the cause of Talus+V sitting slightly above the hull in Fig. 8).
//!
//! Replacement within a partition is LRU (the paper's Talus+V/LRU
//! configuration); SRRIP-style policies pair with way partitioning
//! ([`WayPartitioned`](super::WayPartitioned)) as in the paper's Fig. 9.

use super::PartitionedCacheModel;
use crate::addr::{LineAddr, PartitionId};
use crate::hasher::H3Hasher;
use crate::policy::AccessCtx;
use crate::stats::{AccessResult, CacheStats};

const INVALID_TAG: u64 = u64::MAX;
const NO_OWNER: u32 = u32::MAX;

/// Fraction of capacity left unmanaged by default (paper §VI-B: 10%).
pub const DEFAULT_UNMANAGED_FRACTION: f64 = 0.10;

/// A Vantage-like fine-grained partitioned cache (skew-associative, LRU).
///
/// # Examples
///
/// ```
/// use talus_sim::part::{PartitionedCacheModel, VantageLike};
/// use talus_sim::{AccessCtx, LineAddr, PartitionId};
/// let mut cache = VantageLike::new(4096, 16, 2, 11);
/// // Line-granularity grants (enforced over the 90% managed region).
/// let granted = cache.set_partition_sizes(&[1000, 3096]);
/// assert_eq!(granted, vec![1000, 3096]);
/// cache.access(PartitionId(0), LineAddr(5), &AccessCtx::new());
/// ```
#[derive(Debug, Clone)]
pub struct VantageLike {
    rows: usize,
    ways: usize,
    tags: Vec<u64>,
    owner: Vec<u32>,
    stamp: Vec<u64>,
    clock: u64,
    /// Effective (managed-region-scaled) per-partition targets, in lines.
    targets: Vec<u64>,
    /// Requested sizes as granted to the caller.
    granted: Vec<u64>,
    occupancy: Vec<u64>,
    unmanaged_fraction: f64,
    hashers: Vec<H3Hasher>,
    stats: Vec<CacheStats>,
}

impl VantageLike {
    /// Builds a Vantage-like cache with the default 10% unmanaged region.
    ///
    /// `ways` is the number of replacement candidates per access (the
    /// zcache analogue of its candidate count).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of `ways` or
    /// `partitions` is zero.
    pub fn new(capacity_lines: u64, ways: usize, partitions: usize, seed: u64) -> Self {
        Self::with_unmanaged_fraction(
            capacity_lines,
            ways,
            partitions,
            seed,
            DEFAULT_UNMANAGED_FRACTION,
        )
    }

    /// Builds a Vantage-like cache with an explicit unmanaged fraction
    /// (for the ablation study).
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry or if `unmanaged_fraction` is outside
    /// `[0, 0.9]`.
    pub fn with_unmanaged_fraction(
        capacity_lines: u64,
        ways: usize,
        partitions: usize,
        seed: u64,
        unmanaged_fraction: f64,
    ) -> Self {
        assert!(capacity_lines > 0, "capacity must be positive");
        assert!(ways > 0, "associativity must be positive");
        assert!(partitions > 0, "partition count must be positive");
        assert!(
            capacity_lines.is_multiple_of(ways as u64),
            "capacity must be a multiple of ways"
        );
        assert!(
            (0.0..=0.9).contains(&unmanaged_fraction),
            "unmanaged fraction must be in [0, 0.9]"
        );
        let rows = (capacity_lines / ways as u64) as usize;
        let slots = rows * ways;
        VantageLike {
            rows,
            ways,
            tags: vec![INVALID_TAG; slots],
            owner: vec![NO_OWNER; slots],
            stamp: vec![0; slots],
            clock: 0,
            targets: vec![0; partitions],
            granted: vec![0; partitions],
            occupancy: vec![0; partitions],
            unmanaged_fraction,
            hashers: (0..ways)
                .map(|w| H3Hasher::new(32, seed.wrapping_add(0x1234_5678 * (w as u64 + 1))))
                .collect(),
            stats: vec![CacheStats::new(); partitions],
        }
    }

    /// Current resident lines of a partition.
    pub fn occupancy(&self, part: PartitionId) -> u64 {
        self.occupancy[part.index()]
    }

    /// The effective (managed-region-scaled) target of a partition.
    pub fn effective_target(&self, part: PartitionId) -> u64 {
        self.targets[part.index()]
    }

    /// The candidate slot index for `line` in way `w` (skewed: each way
    /// has its own hash).
    fn slot(&self, line: LineAddr, w: usize) -> usize {
        let row = if self.rows == 1 {
            0
        } else {
            (self.hashers[w].hash_line(line) % self.rows as u64) as usize
        };
        row * self.ways + w
    }

    /// Victim selection among the candidate slots: source capacity from
    /// the partition(s) with the highest occupancy-to-target ratio
    /// (Vantage's demote-from-over-budget rule), breaking ties by LRU.
    fn pick_victim(&self, cands: &[usize]) -> usize {
        let mut best_slot = cands[0];
        let mut best_key = (f64::NEG_INFINITY, 0u64);
        for &s in cands {
            let oi = self.owner[s] as usize;
            let ratio = if self.targets[oi] == 0 {
                f64::INFINITY
            } else {
                self.occupancy[oi] as f64 / self.targets[oi] as f64
            };
            // Older (smaller stamp) is a better victim: compare age.
            let age = self.clock - self.stamp[s];
            if ratio > best_key.0 + 1e-9 || ((ratio - best_key.0).abs() <= 1e-9 && age > best_key.1)
            {
                best_key = (ratio, age);
                best_slot = s;
            }
        }
        best_slot
    }

    /// One access with the partition index already validated; shared by
    /// the per-access and block paths (stats are recorded by the caller).
    #[inline]
    fn access_inner(&mut self, p: usize, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let _ = ctx;
        let tag = line.value();
        self.clock += 1;
        let mut hit_slot = None;
        let mut empty_slot = None;
        // Gather the W skewed candidates in one pass.
        let mut cands = [0usize; 64];
        debug_assert!(self.ways <= 64, "candidate buffer is sized for <= 64 ways");
        for w in 0..self.ways {
            let s = self.slot(line, w);
            cands[w] = s;
            if self.tags[s] == tag {
                hit_slot = Some(s);
                break;
            }
            if self.tags[s] == INVALID_TAG && empty_slot.is_none() {
                empty_slot = Some(s);
            }
        }
        if let Some(s) = hit_slot {
            self.stamp[s] = self.clock;
            AccessResult::Hit
        } else if self.granted[p] == 0 {
            AccessResult::Miss // zero-size partitions bypass
        } else {
            let s = match empty_slot {
                Some(s) => s,
                None => {
                    let v = self.pick_victim(&cands[..self.ways]);
                    let old = self.owner[v];
                    debug_assert_ne!(old, NO_OWNER);
                    self.occupancy[old as usize] -= 1;
                    v
                }
            };
            self.tags[s] = tag;
            self.owner[s] = p as u32;
            self.stamp[s] = self.clock;
            self.occupancy[p] += 1;
            AccessResult::Miss
        }
    }
}

impl PartitionedCacheModel for VantageLike {
    fn num_partitions(&self) -> usize {
        self.stats.len()
    }

    fn set_partition_sizes(&mut self, lines: &[u64]) -> Vec<u64> {
        assert_eq!(
            lines.len(),
            self.num_partitions(),
            "one request per partition"
        );
        let capacity = self.capacity_lines();
        let requested: u64 = lines.iter().sum();
        // Grants are exact (line granularity) unless oversubscribed.
        self.granted = if requested <= capacity {
            lines.to_vec()
        } else {
            lines
                .iter()
                .map(|&l| (l as u128 * capacity as u128 / requested as u128) as u64)
                .collect()
        };
        // Vantage can only guarantee the managed region: effective targets
        // are scaled down, and the slack floats between partitions.
        let scale = 1.0 - self.unmanaged_fraction;
        self.targets = self
            .granted
            .iter()
            .map(|&g| (g as f64 * scale) as u64)
            .collect();
        self.granted.clone()
    }

    fn access(&mut self, part: PartitionId, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        let result = self.access_inner(p, line, ctx);
        self.stats[p].record(result);
        result
    }

    fn access_block(&mut self, part: PartitionId, lines: &[LineAddr], ctx: &AccessCtx) {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        let mut hits = 0u64;
        for &line in lines {
            if self.access_inner(p, line, ctx) == AccessResult::Hit {
                hits += 1;
            }
        }
        self.stats[p].record_block(hits, lines.len() as u64 - hits);
    }

    fn partition_stats(&self, part: PartitionId) -> &CacheStats {
        &self.stats[part.index()]
    }

    fn reset_stats(&mut self) {
        for s in &mut self.stats {
            s.reset();
        }
    }

    fn capacity_lines(&self) -> u64 {
        (self.rows * self.ways) as u64
    }

    fn scheme_name(&self) -> &'static str {
        "vantage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn grants_are_line_granular() {
        let mut c = VantageLike::new(1024, 16, 2, 1);
        let granted = c.set_partition_sizes(&[123, 901]);
        assert_eq!(granted, vec![123, 901]);
    }

    #[test]
    fn effective_targets_scaled_by_managed_region() {
        let mut c = VantageLike::new(1000, 10, 2, 1);
        c.set_partition_sizes(&[500, 500]);
        assert_eq!(c.effective_target(PartitionId(0)), 450);
    }

    #[test]
    fn hits_after_insert() {
        let mut c = VantageLike::new(256, 16, 1, 1);
        c.set_partition_sizes(&[256]);
        assert!(c.access(PartitionId(0), LineAddr(7), &ctx()).is_miss());
        assert!(c.access(PartitionId(0), LineAddr(7), &ctx()).is_hit());
    }

    #[test]
    fn near_capacity_scan_fits() {
        // The knife-edge case Talus relies on (Assumption 2): a cyclic
        // scan over 90% of the partition's size must mostly hit. The
        // skewed array keeps conflict evictions rare.
        let mut c = VantageLike::with_unmanaged_fraction(4096, 16, 1, 1, 0.0);
        c.set_partition_sizes(&[4096]);
        let lines = 3686; // 90% of capacity
        for _ in 0..5 {
            for i in 0..lines {
                c.access(PartitionId(0), LineAddr(i), &ctx());
            }
        }
        let hr = c.partition_stats(PartitionId(0)).hit_rate();
        assert!(hr > 0.75, "hit rate {hr}");
    }

    #[test]
    fn occupancy_converges_near_targets() {
        let mut c = VantageLike::new(4096, 16, 2, 1);
        c.set_partition_sizes(&[2048, 2048]);
        let mut state = 1u64;
        for _ in 0..200_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = LineAddr((state >> 33) % 8192);
            let p = PartitionId(((state >> 20) & 1) as u32);
            c.access(p, line, &ctx());
        }
        let o0 = c.occupancy(PartitionId(0)) as f64;
        let o1 = c.occupancy(PartitionId(1)) as f64;
        assert!((o0 / (o0 + o1) - 0.5).abs() < 0.1, "o0 {o0} o1 {o1}");
    }

    #[test]
    fn skewed_targets_are_respected() {
        // Partition 0 targets 12.5% of lines; equal traffic. Enforcement
        // should keep partition 0 near its target even though it would
        // grab ~50% in an unpartitioned cache.
        let mut c = VantageLike::new(4096, 16, 2, 1);
        c.set_partition_sizes(&[512, 3584]);
        let mut state = 7u64;
        for _ in 0..300_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = LineAddr((state >> 33) % 16384);
            let p = PartitionId(((state >> 21) & 1) as u32);
            c.access(p, line, &ctx());
        }
        let o0 = c.occupancy(PartitionId(0)) as f64;
        assert!(o0 < 512.0 * 1.5, "partition 0 holds {o0} lines");
        assert!(o0 > 512.0 * 0.5, "partition 0 holds {o0} lines");
    }

    #[test]
    fn zero_size_partition_bypasses() {
        let mut c = VantageLike::new(256, 16, 2, 1);
        c.set_partition_sizes(&[0, 256]);
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
        assert_eq!(c.occupancy(PartitionId(0)), 0);
    }

    #[test]
    fn oversubscription_scales_down() {
        let mut c = VantageLike::new(1000, 10, 2, 1);
        let granted = c.set_partition_sizes(&[2000, 2000]);
        assert!(granted.iter().sum::<u64>() <= 1000);
    }

    #[test]
    #[should_panic(expected = "unmanaged fraction")]
    fn rejects_bad_unmanaged_fraction() {
        VantageLike::with_unmanaged_fraction(256, 16, 1, 1, 0.95);
    }

    #[test]
    fn protected_partition_survives_thrashing_neighbour() {
        let mut c = VantageLike::new(2048, 16, 2, 1);
        c.set_partition_sizes(&[1024, 1024]);
        for i in 0..512u64 {
            c.access(PartitionId(0), LineAddr(i), &ctx());
        }
        for i in 0..50_000u64 {
            c.access(PartitionId(1), LineAddr(1_000_000 + i), &ctx());
        }
        c.reset_stats();
        for i in 0..512u64 {
            c.access(PartitionId(0), LineAddr(i), &ctx());
        }
        let hr = c.partition_stats(PartitionId(0)).hit_rate();
        assert!(hr > 0.8, "partition 0 re-touch hit rate {hr}");
    }

    #[test]
    fn stale_lines_of_resized_partitions_go_first() {
        let mut c = VantageLike::new(1024, 16, 2, 1);
        c.set_partition_sizes(&[1024, 0]);
        for i in 0..1024u64 {
            c.access(PartitionId(0), LineAddr(i), &ctx());
        }
        // Flip ownership: partition 0 now has target 0; its resident lines
        // should be the preferred victims for partition 1's inserts.
        c.set_partition_sizes(&[0, 1024]);
        for i in 0..700u64 {
            c.access(PartitionId(1), LineAddr(10_000 + i), &ctx());
        }
        c.reset_stats();
        for i in 0..700u64 {
            c.access(PartitionId(1), LineAddr(10_000 + i), &ctx());
        }
        let hr = c.partition_stats(PartitionId(1)).hit_rate();
        assert!(hr > 0.9, "new owner hit rate {hr}");
    }
}
