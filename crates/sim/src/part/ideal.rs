//! Idealised partitioning: exact line-granularity, fully-associative
//! partitions — the "Talus+I" configuration of the paper's Fig. 8.
//!
//! Useful as a reference point: it satisfies Assumption 2 (miss rate is a
//! function of size alone) perfectly, so Talus on ideal partitioning
//! should trace the hull as closely as the workload's statistics allow.

use super::PartitionedCacheModel;
use crate::addr::{LineAddr, PartitionId};
use crate::array::{CacheModel, FullyAssocLru};
use crate::policy::AccessCtx;
use crate::stats::{AccessResult, CacheStats};

/// A set of exact, fully-associative LRU partitions.
///
/// # Examples
///
/// ```
/// use talus_sim::part::{IdealPartitioned, PartitionedCacheModel};
/// use talus_sim::{AccessCtx, LineAddr, PartitionId};
/// let mut cache = IdealPartitioned::new(1000, 2);
/// let granted = cache.set_partition_sizes(&[300, 700]);
/// assert_eq!(granted, vec![300, 700]); // exact, no coarsening
/// cache.access(PartitionId(0), LineAddr(1), &AccessCtx::new());
/// ```
#[derive(Debug, Clone)]
pub struct IdealPartitioned {
    capacity: u64,
    parts: Vec<FullyAssocLru>,
}

impl IdealPartitioned {
    /// Creates `partitions` empty fully-associative LRU partitions sharing
    /// `capacity_lines`. All partitions start at size zero (bypass); call
    /// [`set_partition_sizes`](PartitionedCacheModel::set_partition_sizes).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(capacity_lines: u64, partitions: usize) -> Self {
        assert!(partitions > 0, "partition count must be positive");
        IdealPartitioned {
            capacity: capacity_lines,
            parts: (0..partitions).map(|_| FullyAssocLru::new(0)).collect(),
        }
    }

    /// Current resident line count of one partition.
    pub fn occupancy(&self, part: PartitionId) -> usize {
        self.parts[part.index()].len()
    }
}

impl PartitionedCacheModel for IdealPartitioned {
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    fn set_partition_sizes(&mut self, lines: &[u64]) -> Vec<u64> {
        assert_eq!(
            lines.len(),
            self.num_partitions(),
            "one request per partition"
        );
        // Exact grants, scaled down proportionally only if oversubscribed.
        let requested: u64 = lines.iter().sum();
        let granted: Vec<u64> = if requested <= self.capacity {
            lines.to_vec()
        } else {
            lines
                .iter()
                .map(|&l| (l as u128 * self.capacity as u128 / requested as u128) as u64)
                .collect()
        };
        for (p, &g) in granted.iter().enumerate() {
            self.parts[p].set_capacity(g);
        }
        granted
    }

    fn access(&mut self, part: PartitionId, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        self.parts[part.index()].access(line, ctx)
    }

    fn access_block(&mut self, part: PartitionId, lines: &[LineAddr], ctx: &AccessCtx) {
        // Resolve the partition once for the whole block.
        self.parts[part.index()].access_block(lines, ctx);
    }

    fn partition_stats(&self, part: PartitionId) -> &CacheStats {
        self.parts[part.index()].stats()
    }

    fn reset_stats(&mut self) {
        for p in &mut self.parts {
            p.reset_stats();
        }
    }

    fn capacity_lines(&self) -> u64 {
        self.capacity
    }

    fn scheme_name(&self) -> &'static str {
        "ideal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn grants_are_exact() {
        let mut c = IdealPartitioned::new(100, 3);
        let granted = c.set_partition_sizes(&[13, 37, 50]);
        assert_eq!(granted, vec![13, 37, 50]);
    }

    #[test]
    fn oversubscription_scales_down() {
        let mut c = IdealPartitioned::new(100, 2);
        let granted = c.set_partition_sizes(&[150, 150]);
        assert!(granted.iter().sum::<u64>() <= 100);
        assert_eq!(granted[0], granted[1]);
    }

    #[test]
    fn partitions_are_isolated() {
        let mut c = IdealPartitioned::new(20, 2);
        c.set_partition_sizes(&[10, 10]);
        c.access(PartitionId(0), LineAddr(1), &ctx());
        // Same line in partition 1 is a separate residency.
        assert!(c.access(PartitionId(1), LineAddr(1), &ctx()).is_miss());
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_hit());
    }

    #[test]
    fn zero_size_partition_bypasses() {
        let mut c = IdealPartitioned::new(20, 2);
        c.set_partition_sizes(&[0, 20]);
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
        assert_eq!(c.occupancy(PartitionId(0)), 0);
    }

    #[test]
    fn shrinking_partition_evicts() {
        let mut c = IdealPartitioned::new(20, 2);
        c.set_partition_sizes(&[10, 10]);
        for i in 0..10u64 {
            c.access(PartitionId(0), LineAddr(i), &ctx());
        }
        assert_eq!(c.occupancy(PartitionId(0)), 10);
        c.set_partition_sizes(&[4, 16]);
        assert_eq!(c.occupancy(PartitionId(0)), 4);
    }

    #[test]
    fn exact_capacity_behaviour() {
        // A 5-line partition holds exactly a 5-line working set.
        let mut c = IdealPartitioned::new(10, 2);
        c.set_partition_sizes(&[5, 5]);
        for round in 0..3 {
            for i in 0..5u64 {
                let r = c.access(PartitionId(0), LineAddr(i), &ctx());
                if round > 0 {
                    assert!(r.is_hit());
                }
            }
        }
        // A 6-line cyclic working set in a 5-line LRU partition: 0 hits.
        let mut c = IdealPartitioned::new(10, 2);
        c.set_partition_sizes(&[5, 5]);
        for _ in 0..4 {
            for i in 0..6u64 {
                assert!(c.access(PartitionId(1), LineAddr(i), &ctx()).is_miss());
            }
        }
    }
}
