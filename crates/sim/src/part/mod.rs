//! Partitioned caches.
//!
//! Talus builds on existing partitioning hardware (paper §VI-B). This
//! module provides the schemes the paper evaluates:
//!
//! - [`WayPartitioned`]: coarse way masks — cheap, but allocations are
//!   quantised to whole ways (Talus corrects for this via
//!   `ShadowConfig::coarsened`);
//! - [`SetPartitioned`]: partitions own disjoint set ranges — the §III
//!   worked example's scheme;
//! - [`VantageLike`]: fine-grained line-granularity targets with soft
//!   enforcement and an unmanaged region, standing in for Vantage on a
//!   zcache (see DESIGN.md for the substitution argument);
//! - [`FutilityScaled`]: fine-grained partitioning via per-partition
//!   futility scaling factors — the §VI-B alternative that manages 100%
//!   of capacity (no unmanaged region);
//! - [`IdealPartitioned`]: exact fully-associative partitions — the
//!   "Talus+I" idealised configuration of Fig. 8.

mod futility;
mod ideal;
mod setpart;
mod vantage;
mod way;

pub use futility::FutilityScaled;
pub use ideal::IdealPartitioned;
pub use setpart::SetPartitioned;
pub use vantage::VantageLike;
pub use way::WayPartitioned;

use crate::addr::{LineAddr, PartitionId};
use crate::policy::AccessCtx;
use crate::stats::{AccessResult, CacheStats};

/// A cache divided into partitions with software-controlled sizes.
///
/// Partitions with a granted size of zero behave as *bypass* partitions:
/// every access misses and nothing is inserted. Talus relies on this when
/// a hull bridge starts at α = 0.
pub trait PartitionedCacheModel {
    /// Number of partitions this cache was built with.
    fn num_partitions(&self) -> usize;

    /// Requests per-partition target sizes in lines and returns the sizes
    /// actually granted after the scheme's coarsening (whole ways, whole
    /// sets, or exact lines). The granted total never exceeds capacity.
    ///
    /// # Panics
    ///
    /// Implementations panic if `lines.len() != num_partitions()`.
    fn set_partition_sizes(&mut self, lines: &[u64]) -> Vec<u64>;

    /// Performs one access on behalf of `part`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `part` is out of range.
    fn access(&mut self, part: PartitionId, line: LineAddr, ctx: &AccessCtx) -> AccessResult;

    /// Performs a block of accesses on behalf of `part`.
    ///
    /// Semantically identical to calling [`access`](Self::access) per
    /// line, in order — bit-for-bit, property-tested. The schemes
    /// specialize this to hoist partition-range lookups, bounds checks,
    /// and stats updates out of the per-line loop.
    ///
    /// # Panics
    ///
    /// Implementations panic if `part` is out of range.
    fn access_block(&mut self, part: PartitionId, lines: &[LineAddr], ctx: &AccessCtx) {
        for &line in lines {
            self.access(part, line, ctx);
        }
    }

    /// Hit/miss counters for one partition since the last reset.
    fn partition_stats(&self, part: PartitionId) -> &CacheStats;

    /// Combined counters over all partitions.
    fn total_stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for p in 0..self.num_partitions() {
            total.merge(self.partition_stats(PartitionId(p as u32)));
        }
        total
    }

    /// Clears all counters (contents are kept).
    fn reset_stats(&mut self);

    /// Total capacity in lines.
    fn capacity_lines(&self) -> u64;

    /// Short scheme name for reports ("way", "set", "vantage", "ideal").
    fn scheme_name(&self) -> &'static str;
}

/// Largest-remainder apportionment of line requests into coarse units
/// (ways or sets): partitions get `floor(request/unit)` units each, and
/// leftover units go to the largest fractional remainders. Requests of
/// zero stay exactly zero (bypass partitions). The grand total never
/// exceeds `total_units`.
pub(crate) fn apportion(requests: &[u64], unit_lines: u64, total_units: u64) -> Vec<u64> {
    debug_assert!(unit_lines > 0);
    let raw: Vec<f64> = requests
        .iter()
        .map(|&r| r as f64 / unit_lines as f64)
        .collect();
    let mut units: Vec<u64> = raw.iter().map(|&x| x.floor() as u64).collect();
    // Cap at the available total (proportional scale-down if oversubscribed).
    let mut used: u64 = units.iter().sum();
    if used > total_units {
        // Oversubscribed even at floors: shave from the largest.
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(units[i]));
        let mut excess = used - total_units;
        for &i in order.iter().cycle() {
            if excess == 0 {
                break;
            }
            if units[i] > 0 {
                units[i] -= 1;
                excess -= 1;
            }
        }
        return units;
    }
    // Hand out leftover units by fractional remainder, but never exceed
    // the rounded total request.
    let desired: u64 = raw.iter().sum::<f64>().round() as u64;
    let target = desired.min(total_units);
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = raw[a] - raw[a].floor();
        let rb = raw[b] - raw[b].floor();
        rb.partial_cmp(&ra).expect("remainders are finite")
    });
    for &i in &order {
        if used >= target {
            break;
        }
        if raw[i] > units[i] as f64 {
            units[i] += 1;
            used += 1;
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_exact_fit() {
        // 3 partitions requesting 2, 4, 2 units' worth of lines.
        let got = apportion(&[200, 400, 200], 100, 8);
        assert_eq!(got, vec![2, 4, 2]);
    }

    #[test]
    fn apportion_rounds_by_remainder() {
        // Requests 1.5 and 2.5 units, 4 available: remainders give 2/2...
        // floor = [1, 2], desired total = 4, largest remainder first.
        let got = apportion(&[150, 250], 100, 4);
        assert_eq!(got.iter().sum::<u64>(), 4);
        assert!(got[1] >= 2);
    }

    #[test]
    fn apportion_keeps_zero_requests_zero() {
        let got = apportion(&[0, 800], 100, 8);
        assert_eq!(got, vec![0, 8]);
    }

    #[test]
    fn apportion_never_exceeds_total() {
        let got = apportion(&[900, 900], 100, 8);
        assert_eq!(got.iter().sum::<u64>(), 8);
    }

    #[test]
    fn apportion_undersubscribed_stays_small() {
        // Requests sum to 3 units; should not be inflated to fill 8.
        let got = apportion(&[100, 200], 100, 8);
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn apportion_paper_worked_example() {
        // §III: 4 MB split as s1 = 2/3 MB, s2 = 10/3 MB on a set-partitioned
        // cache with 1 MB units → 1:3 in whole units (2/3 rounds up via
        // remainder, 10/3 rounds down).
        let mb = 16384; // lines per MB
        let got = apportion(&[(2 * mb) / 3, (10 * mb) / 3], mb, 4);
        assert_eq!(got.iter().sum::<u64>(), 4);
        assert_eq!(got, vec![1, 3]);
    }
}
