//! Futility Scaling: fine-grained partitioning with no unmanaged region.
//!
//! Futility Scaling (Wang & Chen, MICRO-47 2014) is the alternative
//! fine-grained scheme the paper points to in §VI-B: *"Using Talus with
//! Futility Scaling would avoid this complication"* — the complication
//! being Vantage's unmanaged region, which forces Talus+V to plan over
//! only 90% of each allocation and leaves it slightly above the hull in
//! Fig. 8.
//!
//! The scheme assigns every line a **futility** — a replacement-priority
//! rank under the partition's policy (LRU age here) — and *scales* each
//! partition's futilities by a per-partition factor λ. Victims are the
//! candidates with the highest scaled futility, and a feedback controller
//! steers each λ so occupancy tracks the partition's target:
//! over-occupying partitions get larger λ (their lines look more futile
//! and are evicted first), under-occupying ones get smaller λ. Unlike
//! Vantage, enforcement covers **the whole cache** — there is no
//! unmanaged region, so Talus can plan over the full allocation
//! (`planning_scale = 1.0`).
//!
//! Like [`VantageLike`](super::VantageLike), the array is
//! skew-associative (each way indexes through its own H3 hash), giving
//! the high effective associativity both schemes need for Assumption 2.

use super::PartitionedCacheModel;
use crate::addr::{LineAddr, PartitionId};
use crate::hasher::H3Hasher;
use crate::policy::AccessCtx;
use crate::stats::{AccessResult, CacheStats};

const INVALID_TAG: u64 = u64::MAX;
const NO_OWNER: u32 = u32::MAX;

/// Accesses between λ-controller updates.
const ADJUST_PERIOD: u64 = 64;
/// Exponent of the multiplicative occupancy-error feedback.
const GAIN: f64 = 0.5;
/// λ clamp range: wide enough to starve or protect a partition entirely,
/// tight enough that recovery from saturation is quick.
const LAMBDA_MIN: f64 = 1e-4;
const LAMBDA_MAX: f64 = 1e4;

/// A Futility Scaling partitioned cache (skew-associative, LRU futility).
///
/// # Examples
///
/// ```
/// use talus_sim::part::{FutilityScaled, PartitionedCacheModel};
/// use talus_sim::{AccessCtx, LineAddr, PartitionId};
/// let mut cache = FutilityScaled::new(4096, 16, 2, 11);
/// // Line-granularity grants over 100% of capacity (no unmanaged region).
/// let granted = cache.set_partition_sizes(&[1000, 3096]);
/// assert_eq!(granted, vec![1000, 3096]);
/// cache.access(PartitionId(0), LineAddr(5), &AccessCtx::new());
/// ```
#[derive(Debug, Clone)]
pub struct FutilityScaled {
    rows: usize,
    ways: usize,
    tags: Vec<u64>,
    owner: Vec<u32>,
    stamp: Vec<u64>,
    clock: u64,
    targets: Vec<u64>,
    occupancy: Vec<u64>,
    lambda: Vec<f64>,
    hashers: Vec<H3Hasher>,
    stats: Vec<CacheStats>,
}

impl FutilityScaled {
    /// Builds a Futility Scaling cache.
    ///
    /// `ways` is the number of replacement candidates per access (the
    /// skewed-array analogue of associativity).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of `ways` or
    /// `partitions` is zero.
    pub fn new(capacity_lines: u64, ways: usize, partitions: usize, seed: u64) -> Self {
        assert!(capacity_lines > 0, "capacity must be positive");
        assert!(ways > 0, "associativity must be positive");
        assert!(partitions > 0, "partition count must be positive");
        assert!(
            capacity_lines.is_multiple_of(ways as u64),
            "capacity must be a multiple of ways"
        );
        let rows = (capacity_lines / ways as u64) as usize;
        let slots = rows * ways;
        FutilityScaled {
            rows,
            ways,
            tags: vec![INVALID_TAG; slots],
            owner: vec![NO_OWNER; slots],
            stamp: vec![0; slots],
            clock: 0,
            targets: vec![0; partitions],
            occupancy: vec![0; partitions],
            lambda: vec![1.0; partitions],
            hashers: (0..ways)
                .map(|w| H3Hasher::new(32, seed.wrapping_add(0x5CA1_AB1E * (w as u64 + 1))))
                .collect(),
            stats: vec![CacheStats::new(); partitions],
        }
    }

    /// Current resident lines of a partition.
    pub fn occupancy(&self, part: PartitionId) -> u64 {
        self.occupancy[part.index()]
    }

    /// The partition's current futility scaling factor λ.
    pub fn scaling_factor(&self, part: PartitionId) -> f64 {
        self.lambda[part.index()]
    }

    fn slot(&self, line: LineAddr, w: usize) -> usize {
        let row = if self.rows == 1 {
            0
        } else {
            (self.hashers[w].hash_line(line) % self.rows as u64) as usize
        };
        row * self.ways + w
    }

    /// Victim selection: the candidate with the highest scaled futility
    /// `λ_owner × age`.
    fn pick_victim(&self, cands: &[usize]) -> usize {
        let mut best_slot = cands[0];
        let mut best_futility = f64::NEG_INFINITY;
        for &s in cands {
            let oi = self.owner[s] as usize;
            // Age 0 lines still need non-zero futility so λ can order them.
            let age = (self.clock - self.stamp[s]) as f64 + 1.0;
            let futility = self.lambda[oi] * age;
            if futility > best_futility {
                best_futility = futility;
                best_slot = s;
            }
        }
        best_slot
    }

    /// Multiplicative feedback on λ: push each partition's factor towards
    /// the value that holds occupancy at target.
    fn adjust_lambdas(&mut self) {
        for p in 0..self.lambda.len() {
            if self.targets[p] == 0 {
                // Zero-target partitions never insert; λ is irrelevant but
                // pin it high so stale lines drain first after a resize.
                self.lambda[p] = LAMBDA_MAX;
                continue;
            }
            let err = self.occupancy[p] as f64 / self.targets[p] as f64;
            self.lambda[p] = (self.lambda[p] * err.powf(GAIN)).clamp(LAMBDA_MIN, LAMBDA_MAX);
        }
    }

    /// One access with the partition index already validated; shared by
    /// the per-access and block paths (stats are recorded by the caller).
    /// The λ-controller cadence is clock-driven, so it ticks identically
    /// whether accesses arrive singly or in blocks.
    #[inline]
    fn access_inner(&mut self, p: usize, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let _ = ctx;
        let tag = line.value();
        self.clock += 1;
        if self.clock.is_multiple_of(ADJUST_PERIOD) {
            self.adjust_lambdas();
        }
        let mut hit_slot = None;
        let mut empty_slot = None;
        let mut cands = [0usize; 64];
        debug_assert!(self.ways <= 64, "candidate buffer is sized for <= 64 ways");
        for w in 0..self.ways {
            let s = self.slot(line, w);
            cands[w] = s;
            if self.tags[s] == tag {
                hit_slot = Some(s);
                break;
            }
            if self.tags[s] == INVALID_TAG && empty_slot.is_none() {
                empty_slot = Some(s);
            }
        }
        if let Some(s) = hit_slot {
            self.stamp[s] = self.clock;
            AccessResult::Hit
        } else if self.targets[p] == 0 {
            AccessResult::Miss // zero-size partitions bypass
        } else {
            let s = match empty_slot {
                Some(s) => s,
                None => {
                    let v = self.pick_victim(&cands[..self.ways]);
                    let old = self.owner[v];
                    debug_assert_ne!(old, NO_OWNER);
                    self.occupancy[old as usize] -= 1;
                    v
                }
            };
            self.tags[s] = tag;
            self.owner[s] = p as u32;
            self.stamp[s] = self.clock;
            self.occupancy[p] += 1;
            AccessResult::Miss
        }
    }
}

impl PartitionedCacheModel for FutilityScaled {
    fn num_partitions(&self) -> usize {
        self.stats.len()
    }

    fn set_partition_sizes(&mut self, lines: &[u64]) -> Vec<u64> {
        assert_eq!(
            lines.len(),
            self.num_partitions(),
            "one request per partition"
        );
        let capacity = self.capacity_lines();
        let requested: u64 = lines.iter().sum();
        let granted: Vec<u64> = if requested <= capacity {
            lines.to_vec()
        } else {
            lines
                .iter()
                .map(|&l| (l as u128 * capacity as u128 / requested as u128) as u64)
                .collect()
        };
        // No unmanaged region: the enforced target IS the grant.
        self.targets = granted.clone();
        // Resizes invalidate the controller's operating point; restart the
        // feedback from neutral so convergence is symmetric.
        for l in &mut self.lambda {
            *l = 1.0;
        }
        granted
    }

    fn access(&mut self, part: PartitionId, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        let result = self.access_inner(p, line, ctx);
        self.stats[p].record(result);
        result
    }

    fn access_block(&mut self, part: PartitionId, lines: &[LineAddr], ctx: &AccessCtx) {
        let p = part.index();
        assert!(p < self.num_partitions(), "unknown {part}");
        let mut hits = 0u64;
        for &line in lines {
            if self.access_inner(p, line, ctx) == AccessResult::Hit {
                hits += 1;
            }
        }
        self.stats[p].record_block(hits, lines.len() as u64 - hits);
    }

    fn partition_stats(&self, part: PartitionId) -> &CacheStats {
        &self.stats[part.index()]
    }

    fn reset_stats(&mut self) {
        for s in &mut self.stats {
            s.reset();
        }
    }

    fn capacity_lines(&self) -> u64 {
        (self.rows * self.ways) as u64
    }

    fn scheme_name(&self) -> &'static str {
        "futility"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    /// A cheap deterministic line-address stream.
    fn lcg_stream(seed: u64) -> impl Iterator<Item = u64> {
        let mut state = seed | 1;
        std::iter::repeat_with(move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        })
    }

    #[test]
    fn grants_are_line_granular_and_unscaled() {
        let mut c = FutilityScaled::new(1024, 16, 2, 1);
        let granted = c.set_partition_sizes(&[123, 901]);
        assert_eq!(granted, vec![123, 901]);
    }

    #[test]
    fn no_unmanaged_region() {
        // Unlike VantageLike, the enforced targets equal the grants: a
        // full-capacity single partition is enforced at full capacity.
        let mut c = FutilityScaled::new(1000, 10, 1, 1);
        c.set_partition_sizes(&[1000]);
        for (i, l) in lcg_stream(3).take(50_000).enumerate() {
            let _ = i;
            c.access(PartitionId(0), LineAddr(l % 4000), &ctx());
        }
        assert_eq!(c.occupancy(PartitionId(0)), 1000);
    }

    #[test]
    fn hits_after_insert() {
        let mut c = FutilityScaled::new(256, 16, 1, 1);
        c.set_partition_sizes(&[256]);
        assert!(c.access(PartitionId(0), LineAddr(7), &ctx()).is_miss());
        assert!(c.access(PartitionId(0), LineAddr(7), &ctx()).is_hit());
    }

    #[test]
    fn near_capacity_scan_fits() {
        // Assumption 2's knife edge: a cyclic scan slightly below the
        // partition size must mostly hit.
        let mut c = FutilityScaled::new(4096, 16, 1, 1);
        c.set_partition_sizes(&[4096]);
        let lines = 3686; // 90% of capacity
        for _ in 0..5 {
            for i in 0..lines {
                c.access(PartitionId(0), LineAddr(i), &ctx());
            }
        }
        let hr = c.partition_stats(PartitionId(0)).hit_rate();
        assert!(hr > 0.75, "hit rate {hr}");
    }

    #[test]
    fn occupancy_converges_to_skewed_targets() {
        // The controller must hold a 1:7 split under equal traffic — the
        // scenario where an unmanaged region would blur the boundary.
        let mut c = FutilityScaled::new(4096, 16, 2, 1);
        c.set_partition_sizes(&[512, 3584]);
        for (i, l) in lcg_stream(7).take(300_000).enumerate() {
            let p = PartitionId((i & 1) as u32);
            c.access(p, LineAddr(l % 16384), &ctx());
        }
        let o0 = c.occupancy(PartitionId(0)) as f64;
        assert!(
            (o0 - 512.0).abs() < 512.0 * 0.25,
            "partition 0 holds {o0} lines (target 512)"
        );
    }

    #[test]
    fn tracks_targets_tighter_than_vantage_default() {
        // The §VI-B motivation: Futility Scaling enforces the full grant.
        // After convergence the total occupancy splits at the granted
        // ratio within a few percent of capacity.
        let mut c = FutilityScaled::new(8192, 16, 2, 5);
        c.set_partition_sizes(&[2048, 6144]);
        for (i, l) in lcg_stream(11).take(400_000).enumerate() {
            let p = PartitionId((i & 1) as u32);
            c.access(p, LineAddr(l % 32768), &ctx());
        }
        let o0 = c.occupancy(PartitionId(0)) as f64;
        let o1 = c.occupancy(PartitionId(1)) as f64;
        assert!(
            (o0 / (o0 + o1) - 0.25).abs() < 0.05,
            "split {}",
            o0 / (o0 + o1)
        );
    }

    #[test]
    fn zero_size_partition_bypasses() {
        let mut c = FutilityScaled::new(256, 16, 2, 1);
        c.set_partition_sizes(&[0, 256]);
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
        assert!(c.access(PartitionId(0), LineAddr(1), &ctx()).is_miss());
        assert_eq!(c.occupancy(PartitionId(0)), 0);
    }

    #[test]
    fn oversubscription_scales_down() {
        let mut c = FutilityScaled::new(1000, 10, 2, 1);
        let granted = c.set_partition_sizes(&[2000, 2000]);
        assert!(granted.iter().sum::<u64>() <= 1000);
    }

    #[test]
    fn protected_partition_survives_thrashing_neighbour() {
        let mut c = FutilityScaled::new(2048, 16, 2, 1);
        c.set_partition_sizes(&[1024, 1024]);
        for i in 0..512u64 {
            c.access(PartitionId(0), LineAddr(i), &ctx());
        }
        for i in 0..50_000u64 {
            c.access(PartitionId(1), LineAddr(1_000_000 + i), &ctx());
        }
        c.reset_stats();
        for i in 0..512u64 {
            c.access(PartitionId(0), LineAddr(i), &ctx());
        }
        let hr = c.partition_stats(PartitionId(0)).hit_rate();
        assert!(hr > 0.8, "partition 0 re-touch hit rate {hr}");
    }

    #[test]
    fn resized_away_partition_drains() {
        let mut c = FutilityScaled::new(1024, 16, 2, 1);
        c.set_partition_sizes(&[1024, 0]);
        for i in 0..1024u64 {
            c.access(PartitionId(0), LineAddr(i), &ctx());
        }
        c.set_partition_sizes(&[0, 1024]);
        for i in 0..700u64 {
            c.access(PartitionId(1), LineAddr(10_000 + i), &ctx());
        }
        c.reset_stats();
        for i in 0..700u64 {
            c.access(PartitionId(1), LineAddr(10_000 + i), &ctx());
        }
        let hr = c.partition_stats(PartitionId(1)).hit_rate();
        assert!(hr > 0.9, "new owner hit rate {hr}");
    }

    #[test]
    fn lambda_rises_for_over_occupier() {
        let mut c = FutilityScaled::new(1024, 16, 2, 1);
        c.set_partition_sizes(&[256, 768]);
        // Fill partition 0 well past its target by only accessing it.
        for i in 0..20_000u64 {
            c.access(PartitionId(0), LineAddr(i % 2048), &ctx());
        }
        assert!(
            c.scaling_factor(PartitionId(0)) > c.scaling_factor(PartitionId(1)),
            "over-occupier must have the larger λ: {} vs {}",
            c.scaling_factor(PartitionId(0)),
            c.scaling_factor(PartitionId(1))
        );
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn rejects_ragged_geometry() {
        FutilityScaled::new(1000, 16, 1, 1);
    }
}
