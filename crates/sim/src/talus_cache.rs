//! Talus on hardware: shadow partitions over any partitioning scheme.
//!
//! [`TalusCache`] implements the paper's Fig. 7 datapath. Each *logical*
//! (software-visible) partition is backed by two hidden *shadow*
//! partitions (α and β) plus an 8-bit hash + limit-register sampler that
//! steers a ρ fraction of accesses to α. The software side — planning from
//! miss curves, the §VI-B safety margin, the way-partitioning coarsening
//! correction, and Vantage's managed-region scaling — lives in
//! [`TalusCache::reconfigure`].
//!
//! [`TalusSingleCache`] packages the single-application configuration used
//! by the paper's Figs. 1 and 8–10: one logical partition spanning the
//! whole LLC, reconfigured from an attached monitor at a fixed interval.

use crate::addr::{LineAddr, PartitionId};
use crate::hasher::ShadowSampler;
use crate::monitor::Monitor;
use crate::part::PartitionedCacheModel;
use crate::policy::AccessCtx;
use crate::stats::{AccessResult, CacheStats};
use talus_core::{plan, MissCurve, PlanError, TalusOptions, TalusPlan};

/// Configuration for a [`TalusCache`].
#[derive(Debug, Clone, Copy)]
pub struct TalusCacheConfig {
    /// Planner options (safety margin etc.).
    pub options: TalusOptions,
    /// Fraction of each logical allocation Talus plans over. 1.0 for
    /// schemes with hard guarantees (way/set/ideal); 0.9 for Vantage-like
    /// schemes, whose unmanaged region cannot be guaranteed (paper §VI-B).
    pub planning_scale: f64,
    /// Seed for the per-partition sampling hashes.
    pub seed: u64,
}

impl TalusCacheConfig {
    /// Default configuration: 5% safety margin, full planning scale.
    pub fn new() -> Self {
        TalusCacheConfig {
            options: TalusOptions::new(),
            planning_scale: 1.0,
            seed: 0xD1CE,
        }
    }

    /// Configuration for Vantage-like schemes (plans over 90% of each
    /// allocation).
    pub fn for_vantage() -> Self {
        TalusCacheConfig {
            planning_scale: 0.9,
            ..Self::new()
        }
    }

    /// Replaces the planner options.
    pub fn with_options(mut self, options: TalusOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the sampler seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TalusCacheConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Talus wrapped around a partitioned cache.
///
/// The wrapped cache must expose exactly two hardware partitions per
/// logical partition: logical `p` uses hardware partitions `2p` (α) and
/// `2p+1` (β).
#[derive(Debug)]
pub struct TalusCache<C> {
    cache: C,
    samplers: Vec<ShadowSampler>,
    plans: Vec<Option<TalusPlan>>,
    config: TalusCacheConfig,
}

impl<C: PartitionedCacheModel> TalusCache<C> {
    /// Wraps `cache`, which must have `2 × logical_partitions` hardware
    /// partitions.
    ///
    /// # Panics
    ///
    /// Panics if the partition counts do not line up.
    pub fn new(cache: C, logical_partitions: usize, config: TalusCacheConfig) -> Self {
        assert_eq!(
            cache.num_partitions(),
            2 * logical_partitions,
            "need two shadow partitions per logical partition"
        );
        assert!(
            config.planning_scale > 0.0 && config.planning_scale <= 1.0,
            "planning scale must be in (0, 1]"
        );
        let samplers = (0..logical_partitions)
            .map(|i| {
                let mut s = ShadowSampler::new(config.seed.wrapping_add(i as u64 * 0x9E37));
                s.set_rate(1.0); // everything to α until first reconfigure
                s
            })
            .collect();
        TalusCache {
            cache,
            samplers,
            plans: vec![None; logical_partitions],
            config,
        }
    }

    /// Number of logical partitions.
    pub fn logical_partitions(&self) -> usize {
        self.samplers.len()
    }

    /// The wrapped hardware cache.
    pub fn inner(&self) -> &C {
        &self.cache
    }

    /// The plan currently in force for a logical partition (if any).
    pub fn plan(&self, logical: PartitionId) -> Option<&TalusPlan> {
        self.plans[logical.index()].as_ref()
    }

    /// The sampling rate currently steering a logical partition.
    pub fn sampling_rate(&self, logical: PartitionId) -> f64 {
        self.samplers[logical.index()].rate()
    }

    /// Re-plans every logical partition: `targets[p]` lines allocated to
    /// logical partition `p`, whose observed miss curve is `curves[p]`
    /// (sizes in lines, misses per access or any linear unit).
    ///
    /// This performs the paper's post-processing step: Theorem-6 planning
    /// at `planning_scale × target`, hardware grant, coarsening correction
    /// (`ρ = s1/α`), and sampler update.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] encountered; partitions planned
    /// before the error keep their new configuration.
    ///
    /// # Panics
    ///
    /// Panics if `targets` or `curves` length differs from the number of
    /// logical partitions.
    pub fn reconfigure(
        &mut self,
        targets: &[u64],
        curves: &[MissCurve],
    ) -> Result<Vec<TalusPlan>, PlanError> {
        assert_eq!(
            targets.len(),
            self.logical_partitions(),
            "one target per partition"
        );
        assert_eq!(
            curves.len(),
            self.logical_partitions(),
            "one curve per partition"
        );
        let scale = self.config.planning_scale;
        let mut requests = vec![0u64; 2 * targets.len()];
        let mut plans = Vec::with_capacity(targets.len());
        for (p, (&target, curve)) in targets.iter().zip(curves).enumerate() {
            let effective = (target as f64 * scale).floor();
            let plan = plan(curve, effective, self.config.options)?;
            match &plan {
                TalusPlan::Unpartitioned { .. } => {
                    requests[2 * p] = target;
                    requests[2 * p + 1] = 0;
                }
                TalusPlan::Shadow(cfg) => {
                    // Requests are in hardware units; the scheme's managed
                    // fraction (planning_scale) cancels out.
                    let r1 = (cfg.s1 / scale).round() as u64;
                    requests[2 * p] = r1.min(target);
                    requests[2 * p + 1] = target - requests[2 * p];
                }
            }
            plans.push(plan);
        }
        let granted = self.cache.set_partition_sizes(&requests);
        for (p, plan) in plans.iter_mut().enumerate() {
            let rate = match plan {
                TalusPlan::Unpartitioned { .. } => 1.0,
                TalusPlan::Shadow(cfg) => {
                    let g1 = granted[2 * p] as f64 * scale;
                    let g2 = granted[2 * p + 1] as f64 * scale;
                    let margin = self.config.options.safety_margin;
                    if g2 <= 0.0 {
                        1.0
                    } else if cfg.alpha > 0.0 {
                        if g1 <= 0.0 {
                            // α rounded away entirely: everything to β.
                            0.0
                        } else {
                            // §VI-B coarsening: anchor α, ρ = s1/α, then
                            // re-apply the safety margin.
                            let coarse = cfg.coarsened(g1, g2);
                            talus_core::apply_margin(coarse.rho.min(1.0), margin)
                        }
                    } else {
                        // α = 0 (bypass partition): anchor β instead, so
                        // the cached fraction emulates exactly β:
                        // (1 − ρ) = g2/β. The margin raises ρ, shrinking
                        // the cached stream below β's knee.
                        let rho = (1.0 - g2 / cfg.beta).max(0.0);
                        talus_core::apply_margin(rho, margin)
                    }
                }
            };
            self.samplers[p].set_rate(rate.clamp(0.0, 1.0));
            self.plans[p] = Some(*plan);
        }
        Ok(plans)
    }

    /// Applies plain (non-shadow) partitioning: each logical partition
    /// gets a single active shadow partition of its full target size with
    /// all accesses routed to it. Used at startup, before any miss curve
    /// has been observed.
    pub fn set_unpartitioned(&mut self, targets: &[u64]) {
        assert_eq!(
            targets.len(),
            self.logical_partitions(),
            "one target per partition"
        );
        let mut requests = vec![0u64; 2 * targets.len()];
        for (p, &t) in targets.iter().enumerate() {
            requests[2 * p] = t;
        }
        self.cache.set_partition_sizes(&requests);
        for (p, sampler) in self.samplers.iter_mut().enumerate() {
            sampler.set_rate(1.0);
            // Before any curve is observed, assume the cold-cache rate.
            self.plans[p] = Some(TalusPlan::Unpartitioned {
                size: targets[p] as f64,
                expected_misses: 1.0,
            });
        }
    }

    /// Performs one access on behalf of logical partition `logical`.
    pub fn access(
        &mut self,
        logical: PartitionId,
        line: LineAddr,
        ctx: &AccessCtx,
    ) -> AccessResult {
        let p = logical.index();
        let shadow = if self.samplers[p].goes_to_alpha(line) {
            2 * p
        } else {
            2 * p + 1
        };
        self.cache.access(PartitionId(shadow as u32), line, ctx)
    }

    /// Combined statistics of a logical partition (both shadows).
    pub fn logical_stats(&self, logical: PartitionId) -> CacheStats {
        let p = logical.index();
        let mut s = *self.cache.partition_stats(PartitionId(2 * p as u32));
        s.merge(self.cache.partition_stats(PartitionId(2 * p as u32 + 1)));
        s
    }

    /// Clears all statistics.
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Capacity of the wrapped cache in lines.
    pub fn capacity_lines(&self) -> u64 {
        self.cache.capacity_lines()
    }
}

/// Single-application Talus: one logical partition spanning the LLC, driven
/// by an attached monitor and reconfigured every `interval` accesses.
///
/// This is the configuration behind the paper's single-program results
/// (Figs. 1, 8, 9, 10): software reads the monitor, convexifies, and
/// re-plans periodically (the paper reconfigures every 10 ms; trace-driven
/// simulation uses an access count).
#[derive(Debug)]
pub struct TalusSingleCache<C, M> {
    talus: TalusCache<C>,
    monitor: M,
    interval: u64,
    since_reconfigure: u64,
    reconfigurations: u64,
}

impl<C: PartitionedCacheModel, M: Monitor> TalusSingleCache<C, M> {
    /// Wraps a two-partition cache and a monitor; reconfigures every
    /// `interval` accesses.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not have exactly two partitions or
    /// `interval` is zero.
    pub fn new(cache: C, monitor: M, interval: u64, config: TalusCacheConfig) -> Self {
        assert!(interval > 0, "reconfiguration interval must be positive");
        TalusSingleCache {
            talus: TalusCache::new(cache, 1, config),
            monitor,
            interval,
            since_reconfigure: 0,
            reconfigurations: 0,
        }
    }

    /// Performs one access: feeds the monitor, accesses the cache, and
    /// reconfigures at interval boundaries.
    pub fn access(&mut self, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        self.monitor.record(line);
        let r = self.talus.access(PartitionId(0), line, ctx);
        self.since_reconfigure += 1;
        if self.since_reconfigure >= self.interval {
            self.reconfigure_now();
        }
        r
    }

    /// Performs a block of accesses: the monitor ingests whole chunks via
    /// [`Monitor::record_block`], chunks are split at reconfiguration
    /// boundaries, and the cache is then accessed line by line.
    ///
    /// Equivalent to calling [`access`](TalusSingleCache::access) per line:
    /// the monitor and the cache only interact at interval boundaries, and
    /// chunks never straddle one.
    pub fn access_block(&mut self, lines: &[LineAddr], ctx: &AccessCtx) {
        let mut rest = lines;
        while !rest.is_empty() {
            let take = ((self.interval - self.since_reconfigure) as usize).min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            self.monitor.record_block(chunk);
            for &line in chunk {
                self.talus.access(PartitionId(0), line, ctx);
            }
            self.since_reconfigure += take as u64;
            if self.since_reconfigure >= self.interval {
                self.reconfigure_now();
            }
            rest = tail;
        }
    }

    /// Interval boundary: re-plan from the monitor's curve and reset it.
    fn reconfigure_now(&mut self) {
        self.since_reconfigure = 0;
        let curve = self.monitor.curve();
        let capacity = self.talus.capacity_lines();
        // Planning failures (e.g. an empty monitor) leave the previous
        // configuration in force — matching hardware, where a bad
        // reconfiguration simply isn't written.
        if self.talus.reconfigure(&[capacity], &[curve]).is_ok() {
            self.reconfigurations += 1;
        }
        self.monitor.reset();
    }

    /// Statistics for the (single) logical partition.
    pub fn stats(&self) -> CacheStats {
        self.talus.logical_stats(PartitionId(0))
    }

    /// Clears access statistics (monitor and plans are kept warm).
    pub fn reset_stats(&mut self) {
        self.talus.reset_stats();
    }

    /// Number of successful reconfigurations so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// The Talus layer, for plan introspection.
    pub fn talus(&self) -> &TalusCache<C> {
        &self.talus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{MattsonMonitor, SampledMattson};
    use crate::part::IdealPartitioned;
    use crate::policy::AccessCtx;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    /// The §III example workload at line scale: ~2k lines random + 3k scan.
    fn fig3_stream(len: usize, seed: u64) -> Vec<LineAddr> {
        let mut state = seed | 1;
        let mut scan = 0u64;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                if state >> 63 == 0 {
                    // Random half over 2048 lines.
                    LineAddr((state >> 30) % 2048)
                } else {
                    // Scanning half over 3072 lines, offset away.
                    scan += 1;
                    LineAddr(1 << 20 | (scan % 3072))
                }
            })
            .collect()
    }

    #[test]
    fn reconfigure_applies_paper_example() {
        // Ideal partitioning, 4096-line cache (≈ "4 MB"), curve with hull
        // vertices at 2048 and 5120: expect rho = 1/3 pre-margin.
        let cache = IdealPartitioned::new(4096, 2);
        let cfg = TalusCacheConfig::new().with_options(TalusOptions::exact());
        let mut t = TalusCache::new(cache, 1, cfg);
        let curve = MissCurve::from_samples(
            &[0.0, 1024.0, 2048.0, 3072.0, 4096.0, 5120.0, 10240.0],
            &[1.0, 0.75, 0.5, 0.5, 0.5, 0.125, 0.125],
        )
        .unwrap();
        let plans = t.reconfigure(&[4096], &[curve]).unwrap();
        let cfg = plans[0].shadow().expect("4096 is on the plateau");
        assert_eq!(cfg.alpha, 2048.0);
        assert_eq!(cfg.beta, 5120.0);
        // rho = (5120-4096)/(5120-2048) = 1/3; s1 = 2048/3 ≈ 683.
        assert!((t.sampling_rate(PartitionId(0)) - 1.0 / 3.0).abs() < 0.01);
        let granted1 = t.inner().partition_stats(PartitionId(0)); // just exists
        let _ = granted1;
    }

    #[test]
    fn unpartitioned_plan_routes_everything_to_alpha() {
        let cache = IdealPartitioned::new(1000, 2);
        let mut t = TalusCache::new(cache, 1, TalusCacheConfig::new());
        // Convex curve: no cliff, plan is unpartitioned at every size.
        let curve = MissCurve::from_samples(&[0.0, 500.0, 1000.0], &[1.0, 0.4, 0.1]).unwrap();
        t.reconfigure(&[1000], &[curve]).unwrap();
        assert_eq!(t.sampling_rate(PartitionId(0)), 1.0);
        for i in 0..100u64 {
            t.access(PartitionId(0), LineAddr(i), &ctx());
        }
        // All traffic went to shadow 0.
        assert_eq!(t.inner().partition_stats(PartitionId(0)).accesses(), 100);
        assert_eq!(t.inner().partition_stats(PartitionId(1)).accesses(), 0);
    }

    #[test]
    fn shadow_split_matches_rho_statistically() {
        let cache = IdealPartitioned::new(4096, 2);
        let cfg = TalusCacheConfig::new().with_options(TalusOptions::exact());
        let mut t = TalusCache::new(cache, 1, cfg);
        let curve = MissCurve::from_samples(
            &[0.0, 2048.0, 3000.0, 4000.0, 5120.0, 8192.0],
            &[1.0, 0.5, 0.5, 0.5, 0.125, 0.125],
        )
        .unwrap();
        t.reconfigure(&[4096], &[curve]).unwrap();
        let rho = t.sampling_rate(PartitionId(0));
        for i in 0..40_000u64 {
            t.access(PartitionId(0), LineAddr(i), &ctx());
        }
        let a = t.inner().partition_stats(PartitionId(0)).accesses() as f64;
        let b = t.inner().partition_stats(PartitionId(1)).accesses() as f64;
        assert!(
            (a / (a + b) - rho).abs() < 0.02,
            "alpha got {}",
            a / (a + b)
        );
    }

    #[test]
    fn multi_logical_partitions_are_independent() {
        let cache = IdealPartitioned::new(8192, 4); // 2 logical × 2 shadows
        let mut t = TalusCache::new(cache, 2, TalusCacheConfig::new());
        // Cliff at 6144 lines, plateau from 2048 (the curve must extend
        // past the allocation, as the paper's 4x-coverage monitors ensure).
        let cliff = MissCurve::from_samples(
            &[0.0, 2048.0, 4096.0, 6144.0, 8192.0],
            &[1.0, 0.5, 0.5, 0.05, 0.05],
        )
        .unwrap();
        let convex = MissCurve::from_samples(&[0.0, 2048.0, 4096.0], &[1.0, 0.3, 0.1]).unwrap();
        t.reconfigure(&[4096, 4096], &[cliff, convex]).unwrap();
        assert!(t.plan(PartitionId(0)).unwrap().shadow().is_some());
        assert!(t.plan(PartitionId(1)).unwrap().shadow().is_none());
        // Partition 1 unpartitioned: rate 1.
        assert_eq!(t.sampling_rate(PartitionId(1)), 1.0);
    }

    #[test]
    fn talus_single_removes_cliff_on_scan() {
        // Cyclic scan over 3072 lines with a 2048-line cache. Plain LRU
        // gets ~0 hits (cliff); Talus should recover roughly 1 - 2048/3072
        // ≈ 2/3 of the hull, i.e. about 2048/3072 hit rate.
        let lines = 3072u64;
        let capacity = 2048u64;
        let cache = IdealPartitioned::new(capacity, 2);
        let monitor = MattsonMonitor::new(8192);
        let mut t = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
        let total = 1_200_000usize;
        for i in 0..total {
            t.access(LineAddr(i as u64 % lines), &ctx());
        }
        assert!(t.reconfigurations() > 0);
        // Ignore warmup: look at a fresh window.
        t.reset_stats();
        for i in 0..total {
            t.access(LineAddr(i as u64 % lines), &ctx());
        }
        let hit = t.stats().hit_rate();
        // Hull value at 2048 for a scan of 3072: miss rate = 1/3 of peak...
        // hull from (0,1) to (3072,~0): m(2048) ≈ 1/3 → hit ≈ 2/3.
        assert!(hit > 0.5, "Talus hit rate {hit}, expected ≈ 2/3");
    }

    #[test]
    fn talus_single_on_fig3_mixture() {
        // The §III mixture: Talus at "4 MB" (4096 lines) should clearly
        // beat plain LRU, which wastes the plateau.
        use crate::array::{CacheModel, FullyAssocLru};
        let stream = fig3_stream(1_500_000, 5);
        let cache = IdealPartitioned::new(4096, 2);
        let monitor = MattsonMonitor::new(10_240);
        let mut talus = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
        let mut lru = FullyAssocLru::new(4096);
        for &l in &stream {
            talus.access(l, &ctx());
            lru.access(l, &ctx());
        }
        talus.reset_stats();
        lru.reset_stats();
        for &l in &stream {
            talus.access(l, &ctx());
            lru.access(l, &ctx());
        }
        let mt = talus.stats().miss_rate();
        let ml = lru.stats().miss_rate();
        assert!(
            mt < ml * 0.75,
            "Talus ({mt:.3}) should significantly beat LRU ({ml:.3})"
        );
    }

    #[test]
    fn access_block_is_equivalent_to_per_access() {
        // Same stream, same seeds: the per-access and block paths must
        // reconfigure at the same boundaries and produce identical stats.
        let stream = fig3_stream(300_000, 7);
        let build = || {
            TalusSingleCache::new(
                IdealPartitioned::new(2048, 2),
                MattsonMonitor::new(8192),
                50_000,
                TalusCacheConfig::new(),
            )
        };
        let mut per_access = build();
        let mut block = build();
        for &l in &stream {
            per_access.access(l, &ctx());
        }
        for chunk in stream.chunks(4096) {
            block.access_block(chunk, &ctx());
        }
        assert_eq!(per_access.reconfigurations(), block.reconfigurations());
        assert_eq!(per_access.stats().accesses(), block.stats().accesses());
        assert_eq!(per_access.stats().misses(), block.stats().misses());
    }

    #[test]
    fn talus_single_works_with_sampled_monitor() {
        // The fast monitor drives the same reconfiguration loop: Talus
        // still bridges a 3072-line scan cliff on a 2048-line cache.
        let lines = 3072u64;
        let cache = IdealPartitioned::new(2048, 2);
        let monitor = SampledMattson::new(8192, 8, 21);
        let mut t = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
        let stream: Vec<LineAddr> = (0..1_200_000u64).map(|i| LineAddr(i % lines)).collect();
        for chunk in stream.chunks(2048) {
            t.access_block(chunk, &ctx());
        }
        assert!(t.reconfigurations() > 0);
        t.reset_stats();
        for chunk in stream.chunks(2048) {
            t.access_block(chunk, &ctx());
        }
        let hit = t.stats().hit_rate();
        assert!(hit > 0.5, "Talus-on-sampled hit rate {hit}, expected ≈ 2/3");
    }

    #[test]
    #[should_panic(expected = "two shadow partitions")]
    fn rejects_mismatched_partition_count() {
        let cache = IdealPartitioned::new(100, 3);
        let _ = TalusCache::new(cache, 2, TalusCacheConfig::new());
    }
}
