//! Cache arrays: the set-associative array used by all policies and a
//! fully-associative LRU used for idealised partitions.

use crate::addr::LineAddr;
use crate::hasher::{H3Hasher, LineHashBuilder};
use crate::policy::{AccessCtx, ReplacementPolicy};
use crate::stats::{AccessResult, CacheStats};
use std::collections::HashMap;

/// Tag value marking an empty way.
const INVALID_TAG: u64 = u64::MAX;

/// Single-pass probe of one set: on a tag match the policy sees a hit;
/// otherwise the first invalid way (or, with the set full, a
/// policy-chosen victim among `all_ways`) receives the tag. One loop
/// finds both the tag and the first invalid way — the hot-loop body
/// shared by [`SetAssocCache`] and
/// [`SetPartitioned`](crate::part::SetPartitioned) so it exists exactly
/// once.
#[inline]
pub(crate) fn probe_set<P: ReplacementPolicy>(
    tags: &mut [u64],
    policy: &mut P,
    set: usize,
    ways: usize,
    tag: u64,
    all_ways: &[usize],
    ctx: &AccessCtx,
) -> AccessResult {
    debug_assert_ne!(
        tag, INVALID_TAG,
        "line address collides with the invalid tag"
    );
    let base = set * ways;
    let mut invalid = None;
    for (w, &t) in tags[base..base + ways].iter().enumerate() {
        if t == tag {
            policy.on_hit(set, w, ctx);
            return AccessResult::Hit;
        }
        if t == INVALID_TAG && invalid.is_none() {
            invalid = Some(w);
        }
    }
    let way = match invalid {
        Some(w) => w,
        None => policy.choose_victim(set, all_ways),
    };
    tags[base + way] = tag;
    policy.on_insert(set, way, ctx);
    AccessResult::Miss
}

/// Anything that behaves like a single cache: look up a line, insert on
/// miss, count hits and misses.
pub trait CacheModel {
    /// Performs one access, inserting the line on a miss.
    fn access(&mut self, line: LineAddr, ctx: &AccessCtx) -> AccessResult;

    /// Performs a block of accesses, inserting each line on a miss.
    ///
    /// Semantically identical to calling [`access`](Self::access) per
    /// line, in order — bit-for-bit, property-tested. Implementations
    /// with per-access setup (context plumbing, bounds checks) hoist it
    /// out of the per-line loop; this is the L2-array end of the batched
    /// seam that `Monitor::record_block` opened one layer up.
    fn access_block(&mut self, lines: &[LineAddr], ctx: &AccessCtx) {
        for &line in lines {
            self.access(line, ctx);
        }
    }

    /// Hit/miss counters since the last reset.
    fn stats(&self) -> &CacheStats;

    /// Clears the counters (cache contents are kept).
    fn reset_stats(&mut self);

    /// Total capacity in cache lines.
    fn capacity_lines(&self) -> u64;
}

/// A hashed set-associative cache with a pluggable replacement policy.
///
/// Addresses are spread across sets with an H3 hash (the paper's caches are
/// hashed; Assumption 3 relies on it). The policy is a type parameter so
/// hot loops monomorphise, but `Box<dyn ReplacementPolicy>` also implements
/// [`ReplacementPolicy`] for runtime selection.
///
/// # Examples
///
/// ```
/// use talus_sim::{AccessCtx, CacheModel, LineAddr, SetAssocCache};
/// use talus_sim::policy::Lru;
/// let mut cache = SetAssocCache::new(1024, 16, Lru::new(), 42);
/// let ctx = AccessCtx::new();
/// assert!(cache.access(LineAddr(7), &ctx).is_miss());
/// assert!(cache.access(LineAddr(7), &ctx).is_hit());
/// assert_eq!(cache.capacity_lines(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<P> {
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    policy: P,
    hasher: H3Hasher,
    stats: CacheStats,
    /// `[0, 1, …, ways-1]`, precomputed so a full-set eviction does not
    /// allocate a candidate vector on every miss.
    all_ways: Vec<usize>,
}

impl<P: ReplacementPolicy> SetAssocCache<P> {
    /// Builds a cache of `capacity_lines` lines with the given
    /// associativity; the number of sets is `capacity / ways`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero, `ways` is zero, or the capacity
    /// is not a multiple of `ways`.
    pub fn new(capacity_lines: u64, ways: usize, policy: P, seed: u64) -> Self {
        assert!(capacity_lines > 0, "capacity must be positive");
        assert!(ways > 0, "associativity must be positive");
        assert!(
            capacity_lines.is_multiple_of(ways as u64),
            "capacity ({capacity_lines} lines) must be a multiple of ways ({ways})"
        );
        let sets = (capacity_lines / ways as u64) as usize;
        Self::with_geometry(sets, ways, policy, seed)
    }

    /// Builds a cache with an explicit `sets × ways` geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn with_geometry(sets: usize, ways: usize, mut policy: P, seed: u64) -> Self {
        assert!(sets > 0, "set count must be positive");
        assert!(ways > 0, "associativity must be positive");
        policy.attach(sets, ways);
        SetAssocCache {
            sets,
            ways,
            tags: vec![INVALID_TAG; sets * ways],
            policy,
            hasher: H3Hasher::new(32, seed),
            stats: CacheStats::new(),
            all_ways: (0..ways).collect(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The replacement policy (e.g. to inspect adaptive state).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Set index for a line (H3-hashed).
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        if self.sets == 1 {
            0
        } else {
            (self.hasher.hash_line(line) % self.sets as u64) as usize
        }
    }

    /// The access path without the stats update, shared by
    /// [`access`](CacheModel::access) and the block loop (the probe is
    /// one pass over the set — the old two-pass `find`/`find_invalid`
    /// split walked the ways twice on every miss).
    #[inline]
    fn access_inner(&mut self, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let set = self.set_of(line);
        let ctx = &ctx.with_line(line); // signature-based policies need the address
        probe_set(
            &mut self.tags,
            &mut self.policy,
            set,
            self.ways,
            line.value(),
            &self.all_ways,
            ctx,
        )
    }
}

impl<P: ReplacementPolicy> CacheModel for SetAssocCache<P> {
    fn access(&mut self, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let result = self.access_inner(line, ctx);
        self.stats.record(result);
        result
    }

    fn access_block(&mut self, lines: &[LineAddr], ctx: &AccessCtx) {
        // Count hits locally and fold into the stats once per block.
        let mut hits = 0u64;
        for &line in lines {
            if self.access_inner(line, ctx) == AccessResult::Hit {
                hits += 1;
            }
        }
        self.stats.record_block(hits, lines.len() as u64 - hits);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn capacity_lines(&self) -> u64 {
        (self.sets * self.ways) as u64
    }
}

/// A fully-associative LRU cache with exact line-count capacity.
///
/// Backbone of the *ideal* partitioning scheme (Talus+I in the paper's
/// Fig. 8): partitions sized to the line, no associativity artefacts.
/// Constant-time accesses via a hash map plus an intrusive doubly-linked
/// recency list. The map hashes with [`mix64`](crate::mix64) (via
/// [`LineHashBuilder`]) rather than the standard library's SipHash:
/// simulated addresses are not attacker-controlled, and the tag lookup is
/// this model's entire access path.
///
/// A capacity of zero models a *bypass* partition: every access misses and
/// nothing is cached (Talus uses this when the hull vertex α is size 0).
#[derive(Debug, Clone)]
pub struct FullyAssocLru {
    capacity: usize,
    map: HashMap<LineAddr, usize, LineHashBuilder>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used; NIL if empty
    tail: usize, // least recently used; NIL if empty
    stats: CacheStats,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    line: LineAddr,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl FullyAssocLru {
    /// Creates a fully-associative LRU cache holding exactly
    /// `capacity_lines` lines (zero means bypass-everything).
    pub fn new(capacity_lines: u64) -> Self {
        let capacity = capacity_lines as usize;
        FullyAssocLru {
            capacity,
            map: HashMap::with_capacity_and_hasher(capacity.min(1 << 20), LineHashBuilder),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::new(),
        }
    }

    /// Current number of resident lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache currently holds no lines.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Changes the capacity. Shrinking evicts LRU lines immediately.
    pub fn set_capacity(&mut self, capacity_lines: u64) {
        self.capacity = capacity_lines as usize;
        while self.map.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn detach(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict from empty cache");
        let line = self.nodes[victim].line;
        self.detach(victim);
        self.map.remove(&line);
        self.free.push(victim);
    }
}

impl CacheModel for FullyAssocLru {
    fn access(&mut self, line: LineAddr, ctx: &AccessCtx) -> AccessResult {
        let _ = ctx;
        let result = if let Some(&idx) = self.map.get(&line) {
            self.detach(idx);
            self.push_front(idx);
            AccessResult::Hit
        } else {
            if self.capacity > 0 {
                if self.map.len() >= self.capacity {
                    self.evict_lru();
                }
                let idx = match self.free.pop() {
                    Some(i) => {
                        self.nodes[i] = Node {
                            line,
                            prev: NIL,
                            next: NIL,
                        };
                        i
                    }
                    None => {
                        self.nodes.push(Node {
                            line,
                            prev: NIL,
                            next: NIL,
                        });
                        self.nodes.len() - 1
                    }
                };
                self.map.insert(line, idx);
                self.push_front(idx);
            }
            AccessResult::Miss
        };
        self.stats.record(result);
        result
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn capacity_lines(&self) -> u64 {
        self.capacity as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Belady, Lru, Srrip};

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn set_assoc_hits_after_insert() {
        let mut c = SetAssocCache::new(64, 4, Lru::new(), 1);
        assert!(c.access(LineAddr(10), &ctx()).is_miss());
        assert!(c.access(LineAddr(10), &ctx()).is_hit());
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn set_assoc_evicts_lru_within_set() {
        // Single set, 2 ways: classic LRU behaviour.
        let mut c = SetAssocCache::with_geometry(1, 2, Lru::new(), 1);
        c.access(LineAddr(1), &ctx());
        c.access(LineAddr(2), &ctx());
        c.access(LineAddr(1), &ctx()); // 2 is now LRU
        c.access(LineAddr(3), &ctx()); // evicts 2
        assert!(c.access(LineAddr(1), &ctx()).is_hit());
        assert!(c.access(LineAddr(2), &ctx()).is_miss());
    }

    #[test]
    fn set_assoc_lru_thrashes_on_cyclic_scan() {
        // The canonical cliff: a cyclic scan over capacity+1 lines in one
        // set gets zero hits under LRU.
        let mut c = SetAssocCache::with_geometry(1, 8, Lru::new(), 1);
        for _ in 0..10 {
            for i in 0..9u64 {
                c.access(LineAddr(i), &ctx());
            }
        }
        assert_eq!(c.stats().hits(), 0);
    }

    #[test]
    fn set_assoc_works_with_srrip() {
        let mut c = SetAssocCache::new(256, 16, Srrip::new(), 3);
        for i in 0..64u64 {
            c.access(LineAddr(i), &ctx());
        }
        for i in 0..64u64 {
            assert!(c.access(LineAddr(i), &ctx()).is_hit(), "line {i}");
        }
    }

    #[test]
    fn set_assoc_belady_beats_lru_on_cyclic_scan() {
        // MIN keeps part of the loop resident; LRU gets nothing.
        let trace: Vec<LineAddr> = (0..20).flat_map(|_| (0..12u64).map(LineAddr)).collect();
        let next = crate::policy::annotate_next_uses(&trace);

        let mut lru = SetAssocCache::with_geometry(1, 8, Lru::new(), 1);
        let mut min = SetAssocCache::with_geometry(1, 8, Belady::new(), 1);
        for (i, &line) in trace.iter().enumerate() {
            let c = AccessCtx::new().with_next_use(next[i]);
            lru.access(line, &c);
            min.access(line, &c);
        }
        assert_eq!(lru.stats().hits(), 0);
        assert!(
            min.stats().hit_rate() > 0.5,
            "MIN hit rate {}",
            min.stats().hit_rate()
        );
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn set_assoc_rejects_ragged_capacity() {
        SetAssocCache::new(100, 16, Lru::new(), 1);
    }

    #[test]
    fn fully_assoc_exact_capacity() {
        let mut c = FullyAssocLru::new(3);
        for i in 0..3u64 {
            assert!(c.access(LineAddr(i), &ctx()).is_miss());
        }
        for i in 0..3u64 {
            assert!(c.access(LineAddr(i), &ctx()).is_hit());
        }
        c.access(LineAddr(99), &ctx()); // evicts LRU = line 0
        assert!(c.access(LineAddr(1), &ctx()).is_hit());
        assert!(c.access(LineAddr(2), &ctx()).is_hit());
        assert!(c.access(LineAddr(0), &ctx()).is_miss());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn fully_assoc_zero_capacity_bypasses() {
        let mut c = FullyAssocLru::new(0);
        for i in 0..10u64 {
            assert!(c.access(LineAddr(i % 2), &ctx()).is_miss());
        }
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn fully_assoc_shrink_evicts_lru_first() {
        let mut c = FullyAssocLru::new(4);
        for i in 0..4u64 {
            c.access(LineAddr(i), &ctx());
        }
        c.access(LineAddr(0), &ctx()); // 0 is MRU; LRU order now 1,2,3
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert!(c.access(LineAddr(0), &ctx()).is_hit());
        assert!(c.access(LineAddr(3), &ctx()).is_hit());
        assert!(c.access(LineAddr(1), &ctx()).is_miss());
    }

    #[test]
    fn fully_assoc_grow_keeps_contents() {
        let mut c = FullyAssocLru::new(2);
        c.access(LineAddr(1), &ctx());
        c.access(LineAddr(2), &ctx());
        c.set_capacity(4);
        assert!(c.access(LineAddr(1), &ctx()).is_hit());
        assert!(c.access(LineAddr(2), &ctx()).is_hit());
    }

    #[test]
    fn fully_assoc_matches_set_assoc_single_set() {
        // A fully-associative LRU and a 1-set LRU array must agree exactly.
        let mut fa = FullyAssocLru::new(8);
        let mut sa = SetAssocCache::with_geometry(1, 8, Lru::new(), 1);
        let mut state = 12345u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = LineAddr((state >> 33) % 24);
            assert_eq!(fa.access(line, &ctx()), sa.access(line, &ctx()));
        }
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = FullyAssocLru::new(2);
        c.access(LineAddr(1), &ctx());
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(LineAddr(1), &ctx()).is_hit());
    }
}
