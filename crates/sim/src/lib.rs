//! # talus-sim — the cache-simulation substrate for the Talus reproduction
//!
//! The Talus paper evaluates on zsim with SPEC CPU2006; this crate is the
//! from-scratch Rust substrate standing in for that stack: a trace-driven
//! last-level-cache simulator with
//!
//! - hashed set-associative and fully-associative arrays ([`SetAssocCache`],
//!   [`FullyAssocLru`]);
//! - the paper's replacement-policy zoo ([`policy`]: LRU, SRRIP, BRRIP,
//!   DRRIP, TA-DRRIP, DIP, PDP, SHiP, random, and offline Belady MIN);
//! - partitioning schemes ([`part`]: way, set, Vantage-like fine-grained,
//!   Futility Scaling (no unmanaged region), and idealised exact
//!   partitions);
//! - miss-curve monitors ([`monitor`]: exact Mattson stack distances,
//!   hardware-style UMONs with extended coverage, multi-monitor sampling
//!   for non-stack policies, and CRUISE-style 3-point curves);
//! - Talus itself in hardware form ([`TalusCache`], [`TalusSingleCache`]):
//!   shadow partitions, the 8-bit hash sampling function, safety margins,
//!   and coarsening corrections;
//! - the §VI-D hardware overhead model ([`overhead`]).
//!
//! ## Quickstart: removing a cliff
//!
//! ```
//! use talus_sim::monitor::MattsonMonitor;
//! use talus_sim::part::IdealPartitioned;
//! use talus_sim::{AccessCtx, LineAddr, TalusCacheConfig, TalusSingleCache};
//!
//! // A 2048-line cache facing a cyclic scan over 3072 lines: LRU would
//! // get zero hits. Talus turns that cliff into a proportional share.
//! let cache = IdealPartitioned::new(2048, 2);
//! let monitor = MattsonMonitor::new(8192);
//! let mut talus = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
//! let ctx = AccessCtx::new();
//! for i in 0..600_000u64 {
//!     talus.access(LineAddr(i % 3072), &ctx);
//! }
//! assert!(talus.stats().hit_rate() > 0.4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod addr;
mod array;
mod hasher;
pub mod monitor;
pub mod overhead;
pub mod part;
pub mod policy;
mod stats;
mod talus_cache;

pub use addr::{
    bytes_to_lines, lines_to_bytes, lines_to_mb, mb_to_lines, LineAddr, PartitionId, ThreadId,
    LINE_BYTES,
};
pub use array::{CacheModel, FullyAssocLru, SetAssocCache};
pub use hasher::{mix64, H3Hasher, LineHashBuilder, LineHasher, SampleFilter, ShadowSampler};
pub use policy::AccessCtx;
pub use stats::{AccessResult, CacheStats};
pub use talus_cache::{TalusCache, TalusCacheConfig, TalusSingleCache};
