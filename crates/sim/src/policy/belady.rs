//! Belady's MIN: the offline optimal replacement policy.
//!
//! MIN evicts the line whose next use lies furthest in the future. It needs
//! an oracle, so it only runs on pre-recorded traces whose next-use indices
//! have been computed by [`annotate_next_uses`]. The Talus paper proves
//! (Corollary 7) that optimal replacement is convex — a property the
//! integration tests verify empirically against this implementation.

use super::{AccessCtx, ReplacementPolicy};
use crate::addr::LineAddr;
use std::collections::HashMap;

/// Sentinel next-use index for lines never referenced again.
pub const NEVER_USED: u64 = u64::MAX;

/// Belady's MIN replacement. Feed every access's next-use index via
/// [`AccessCtx::with_next_use`]; victims are the candidates with the most
/// distant next use.
#[derive(Debug, Clone, Default)]
pub struct Belady {
    next_use: Vec<u64>,
    ways: usize,
}

impl Belady {
    /// Creates a MIN policy (offline oracle information required).
    pub fn new() -> Self {
        Belady::default()
    }
}

impl ReplacementPolicy for Belady {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.next_use = vec![NEVER_USED; sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.next_use[set * self.ways + way] = ctx.next_use;
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no victim candidates");
        *candidates
            .iter()
            .max_by_key(|&&w| self.next_use[set * self.ways + w])
            .expect("candidates is non-empty")
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.next_use[set * self.ways + way] = ctx.next_use;
    }

    fn name(&self) -> &'static str {
        "MIN"
    }
}

/// Computes, for each access in `trace`, the index of the *next* access to
/// the same line (or [`NEVER_USED`]). One backward pass, O(n) time and
/// O(distinct lines) space.
///
/// # Examples
///
/// ```
/// use talus_sim::policy::{annotate_next_uses, NEVER_USED};
/// use talus_sim::LineAddr;
/// let trace = [LineAddr(1), LineAddr(2), LineAddr(1)];
/// let next = annotate_next_uses(&trace);
/// assert_eq!(next, vec![2, NEVER_USED, NEVER_USED]);
/// ```
pub fn annotate_next_uses(trace: &[LineAddr]) -> Vec<u64> {
    let mut next = vec![NEVER_USED; trace.len()];
    let mut last_seen: HashMap<LineAddr, u64> = HashMap::new();
    for (i, &line) in trace.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&line) {
            next[i] = later;
        }
        last_seen.insert(line, i as u64);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotate_simple_trace() {
        let t = [
            LineAddr(5),
            LineAddr(6),
            LineAddr(5),
            LineAddr(6),
            LineAddr(7),
        ];
        assert_eq!(
            annotate_next_uses(&t),
            vec![2, 3, NEVER_USED, NEVER_USED, NEVER_USED]
        );
    }

    #[test]
    fn annotate_empty_trace() {
        assert!(annotate_next_uses(&[]).is_empty());
    }

    #[test]
    fn belady_evicts_furthest_future_use() {
        let mut p = Belady::new();
        p.attach(1, 3);
        p.on_insert(0, 0, &AccessCtx::new().with_next_use(10));
        p.on_insert(0, 1, &AccessCtx::new().with_next_use(50));
        p.on_insert(0, 2, &AccessCtx::new().with_next_use(20));
        assert_eq!(p.choose_victim(0, &[0, 1, 2]), 1);
    }

    #[test]
    fn belady_prefers_dead_lines() {
        let mut p = Belady::new();
        p.attach(1, 2);
        p.on_insert(0, 0, &AccessCtx::new().with_next_use(NEVER_USED));
        p.on_insert(0, 1, &AccessCtx::new().with_next_use(3));
        assert_eq!(p.choose_victim(0, &[0, 1]), 0);
    }

    #[test]
    fn belady_updates_on_hit() {
        let mut p = Belady::new();
        p.attach(1, 2);
        p.on_insert(0, 0, &AccessCtx::new().with_next_use(5));
        p.on_insert(0, 1, &AccessCtx::new().with_next_use(9));
        // Line 0 gets hit; its next use is now far away.
        p.on_hit(0, 0, &AccessCtx::new().with_next_use(100));
        assert_eq!(p.choose_victim(0, &[0, 1]), 0);
    }
}
