//! LRU and random replacement.

use super::{AccessCtx, ReplacementPolicy};

/// Least-recently-used replacement.
///
/// The baseline policy throughout the paper: predictable (it obeys the
/// stack property, so UMONs can sample its whole miss curve) but prone to
/// cliffs on scanning/thrashing patterns.
///
/// Implemented with per-line logical timestamps; the victim is the
/// candidate with the oldest timestamp.
#[derive(Debug, Clone, Default)]
pub struct Lru {
    stamps: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl Lru {
    /// Creates an LRU policy (call [`attach`](ReplacementPolicy::attach)
    /// before use).
    pub fn new() -> Self {
        Lru::default()
    }

    fn stamp(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.stamps = vec![0; sets * ways];
        self.ways = ways;
        self.clock = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.stamp(set, way);
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no victim candidates");
        *candidates
            .iter()
            .min_by_key(|&&w| self.stamps[set * self.ways + w])
            .expect("candidates is non-empty")
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.stamp(set, way);
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

/// Uniform-random replacement: the simplest baseline, cliff-free on cyclic
/// patterns but with a worse floor than LRU on friendly ones.
#[derive(Debug, Clone)]
pub struct RandomRepl {
    state: u64,
}

impl RandomRepl {
    /// Creates a random policy from a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomRepl { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        // xorshift64
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

impl ReplacementPolicy for RandomRepl {
    fn attach(&mut self, _sets: usize, _ways: usize) {}

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {}

    fn choose_victim(&mut self, _set: usize, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no victim candidates");
        candidates[(self.next() % candidates.len() as u64) as usize]
    }

    fn on_insert(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {}

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut lru = Lru::new();
        lru.attach(1, 4);
        let ctx = AccessCtx::new();
        for w in 0..4 {
            lru.on_insert(0, w, &ctx);
        }
        // Touch 0 and 2; oldest is now way 1.
        lru.on_hit(0, 0, &ctx);
        lru.on_hit(0, 2, &ctx);
        assert_eq!(lru.choose_victim(0, &[0, 1, 2, 3]), 1);
    }

    #[test]
    fn lru_respects_candidate_restriction() {
        let mut lru = Lru::new();
        lru.attach(1, 4);
        let ctx = AccessCtx::new();
        for w in 0..4 {
            lru.on_insert(0, w, &ctx);
        }
        // Way 0 is globally oldest, but only 2 and 3 are candidates.
        assert_eq!(lru.choose_victim(0, &[2, 3]), 2);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut lru = Lru::new();
        lru.attach(2, 2);
        let ctx = AccessCtx::new();
        lru.on_insert(0, 0, &ctx);
        lru.on_insert(1, 0, &ctx);
        lru.on_insert(0, 1, &ctx);
        lru.on_insert(1, 1, &ctx);
        lru.on_hit(0, 0, &ctx);
        // Set 0: way 1 older. Set 1: way 0 older.
        assert_eq!(lru.choose_victim(0, &[0, 1]), 1);
        assert_eq!(lru.choose_victim(1, &[0, 1]), 0);
    }

    #[test]
    #[should_panic(expected = "no victim candidates")]
    fn lru_panics_on_empty_candidates() {
        let mut lru = Lru::new();
        lru.attach(1, 1);
        lru.choose_victim(0, &[]);
    }

    #[test]
    fn random_picks_only_candidates() {
        let mut r = RandomRepl::new(7);
        r.attach(1, 8);
        for _ in 0..100 {
            let v = r.choose_victim(0, &[3, 5, 6]);
            assert!([3, 5, 6].contains(&v));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = RandomRepl::new(9);
        let mut b = RandomRepl::new(9);
        let cands: Vec<usize> = (0..16).collect();
        for _ in 0..50 {
            assert_eq!(a.choose_victim(0, &cands), b.choose_victim(0, &cands));
        }
    }

    #[test]
    fn random_eventually_picks_every_candidate() {
        let mut r = RandomRepl::new(3);
        let cands = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.choose_victim(0, &cands)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
