//! RRIP-family policies: SRRIP, BRRIP, DRRIP, and thread-aware DRRIP
//! (Jaleel et al., ISCA 2010), as configured in the paper's evaluation
//! (M = 2 bits, ε = 1/32).

use super::{AccessCtx, ReplacementPolicy};

/// Number of RRPV bits (paper §VII-A: M = 2).
const RRPV_BITS: u8 = 2;
/// Maximum (distant) re-reference prediction value: 2^M − 1.
pub(crate) const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;
/// Long re-reference interval used by SRRIP insertion: 2^M − 2.
pub(crate) const RRPV_LONG: u8 = RRPV_MAX - 1;
/// BRRIP inserts at long (instead of distant) once every 1/ε misses.
const BRRIP_EPSILON: u64 = 32;
/// Set-dueling constituency: one SRRIP and one BRRIP leader per this many
/// sets (per thread for the thread-aware variant).
const DUEL_CONSTITUENCY: usize = 64;
/// 10-bit saturating policy selector.
const PSEL_MAX: i32 = 1023;
const PSEL_INIT: i32 = PSEL_MAX / 2;

/// Shared RRPV array logic.
#[derive(Debug, Clone, Default)]
pub(crate) struct RrpvTable {
    pub(crate) rrpv: Vec<u8>,
    ways: usize,
}

impl RrpvTable {
    pub(crate) fn attach(&mut self, sets: usize, ways: usize) {
        self.rrpv = vec![RRPV_MAX; sets * ways];
        self.ways = ways;
    }

    pub(crate) fn promote(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    pub(crate) fn insert(&mut self, set: usize, way: usize, value: u8) {
        self.rrpv[set * self.ways + way] = value;
    }

    /// SRRIP victim search: find a distant (RRPV max) candidate, aging all
    /// candidates until one appears. Ties break toward the lowest way.
    pub(crate) fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no victim candidates");
        loop {
            let mut oldest = candidates[0];
            let mut oldest_v = 0;
            for &w in candidates {
                let v = self.rrpv[set * self.ways + w];
                if v == RRPV_MAX {
                    return w;
                }
                if v > oldest_v {
                    oldest_v = v;
                    oldest = w;
                }
            }
            // Nobody distant: age everyone by the gap to RRPV_MAX. A single
            // loop iteration then finds the (previously) oldest line.
            let bump = RRPV_MAX - oldest_v;
            debug_assert!(bump > 0);
            for &w in candidates {
                self.rrpv[set * self.ways + w] += bump;
            }
            let _ = oldest;
        }
    }
}

/// Static RRIP (SRRIP-HP): insert at long re-reference interval, promote
/// to near-immediate on hit, evict distant lines.
///
/// Scan-resistant relative to LRU, but still thrashes on working sets
/// slightly larger than the cache — which is why the paper shows Talus
/// convexifying SRRIP too (Fig. 9).
#[derive(Debug, Clone, Default)]
pub struct Srrip {
    table: RrpvTable,
}

impl Srrip {
    /// Creates an SRRIP policy.
    pub fn new() -> Self {
        Srrip::default()
    }
}

impl ReplacementPolicy for Srrip {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.table.attach(sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.promote(set, way);
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        self.table.choose_victim(set, candidates)
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.insert(set, way, RRPV_LONG);
    }

    fn name(&self) -> &'static str {
        "SRRIP"
    }
}

/// Bimodal RRIP: inserts at distant RRPV except for a 1/32 fraction of
/// misses inserted at long, protecting the cache from thrash.
#[derive(Debug, Clone)]
pub struct Brrip {
    table: RrpvTable,
    miss_count: u64,
}

impl Brrip {
    /// Creates a BRRIP policy; `seed` offsets the bimodal phase so
    /// replicated caches do not insert in lockstep.
    pub fn new(seed: u64) -> Self {
        Brrip {
            table: RrpvTable::default(),
            miss_count: seed % BRRIP_EPSILON,
        }
    }

    fn insertion_value(&mut self) -> u8 {
        self.miss_count += 1;
        if self.miss_count.is_multiple_of(BRRIP_EPSILON) {
            RRPV_LONG
        } else {
            RRPV_MAX
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.table.attach(sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.promote(set, way);
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        self.table.choose_victim(set, candidates)
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        let v = self.insertion_value();
        self.table.insert(set, way, v);
    }

    fn name(&self) -> &'static str {
        "BRRIP"
    }
}

/// Which of the duelling insertion policies a set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DuelRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

/// Dynamic RRIP: set dueling between SRRIP and BRRIP insertion with a
/// 10-bit PSEL counter (single-threaded variant).
#[derive(Debug, Clone)]
pub struct Drrip {
    table: RrpvTable,
    brrip_phase: u64,
    psel: i32,
}

impl Drrip {
    /// Creates a DRRIP policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Drrip {
            table: RrpvTable::default(),
            brrip_phase: seed % BRRIP_EPSILON,
            psel: PSEL_INIT,
        }
    }

    fn role(set: usize) -> DuelRole {
        match set % DUEL_CONSTITUENCY {
            0 => DuelRole::SrripLeader,
            1 => DuelRole::BrripLeader,
            _ => DuelRole::Follower,
        }
    }

    fn brrip_value(&mut self) -> u8 {
        self.brrip_phase += 1;
        if self.brrip_phase.is_multiple_of(BRRIP_EPSILON) {
            RRPV_LONG
        } else {
            RRPV_MAX
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.table.attach(sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.promote(set, way);
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        self.table.choose_victim(set, candidates)
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        // A miss in a leader set votes against that leader's policy.
        let value = match Self::role(set) {
            DuelRole::SrripLeader => {
                self.psel = (self.psel + 1).min(PSEL_MAX);
                RRPV_LONG
            }
            DuelRole::BrripLeader => {
                self.psel = (self.psel - 1).max(0);
                self.brrip_value()
            }
            DuelRole::Follower => {
                // High PSEL: SRRIP leaders miss more, so follow BRRIP.
                if self.psel > PSEL_INIT {
                    self.brrip_value()
                } else {
                    RRPV_LONG
                }
            }
        };
        self.table.insert(set, way, value);
    }

    fn name(&self) -> &'static str {
        "DRRIP"
    }
}

/// Thread-aware DRRIP (TA-DRRIP): one PSEL and one pair of leader-set
/// groups per thread, so each thread chooses SRRIP or BRRIP insertion
/// independently in a shared cache.
#[derive(Debug, Clone)]
pub struct TaDrrip {
    table: RrpvTable,
    brrip_phase: u64,
    psel: Vec<i32>,
}

/// Maximum threads TA-DRRIP tracks (Table I: 8-core CMP).
const MAX_THREADS: usize = 16;

impl TaDrrip {
    /// Creates a TA-DRRIP policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        TaDrrip {
            table: RrpvTable::default(),
            brrip_phase: seed % BRRIP_EPSILON,
            psel: vec![PSEL_INIT; MAX_THREADS],
        }
    }

    fn role(set: usize, thread: usize) -> DuelRole {
        // Each thread owns two slots in the constituency: 2t (SRRIP leader)
        // and 2t+1 (BRRIP leader).
        let slot = set % DUEL_CONSTITUENCY;
        if slot == 2 * thread {
            DuelRole::SrripLeader
        } else if slot == 2 * thread + 1 {
            DuelRole::BrripLeader
        } else {
            DuelRole::Follower
        }
    }

    fn brrip_value(&mut self) -> u8 {
        self.brrip_phase += 1;
        if self.brrip_phase.is_multiple_of(BRRIP_EPSILON) {
            RRPV_LONG
        } else {
            RRPV_MAX
        }
    }
}

impl ReplacementPolicy for TaDrrip {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.table.attach(sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.promote(set, way);
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        self.table.choose_victim(set, candidates)
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let t = ctx.thread.index() % MAX_THREADS;
        let value = match Self::role(set, t) {
            DuelRole::SrripLeader => {
                self.psel[t] = (self.psel[t] + 1).min(PSEL_MAX);
                RRPV_LONG
            }
            DuelRole::BrripLeader => {
                self.psel[t] = (self.psel[t] - 1).max(0);
                self.brrip_value()
            }
            DuelRole::Follower => {
                if self.psel[t] > PSEL_INIT {
                    self.brrip_value()
                } else {
                    RRPV_LONG
                }
            }
        };
        self.table.insert(set, way, value);
    }

    fn name(&self) -> &'static str {
        "TA-DRRIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ThreadId;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn srrip_promotes_on_hit_and_evicts_distant() {
        let mut p = Srrip::new();
        p.attach(1, 4);
        for w in 0..4 {
            p.on_insert(0, w, &ctx()); // all at RRPV_LONG = 2
        }
        p.on_hit(0, 1, &ctx()); // way 1 -> 0
                                // No distant lines: aging bumps everyone until some hit RRPV_MAX.
                                // Ways 0, 2, 3 (at 2) reach 3 first; lowest index wins.
        assert_eq!(p.choose_victim(0, &[0, 1, 2, 3]), 0);
    }

    #[test]
    fn srrip_eviction_prefers_existing_distant_line() {
        let mut p = Srrip::new();
        p.attach(1, 2);
        // Untouched table starts at RRPV_MAX, so way 0 is already distant.
        assert_eq!(p.choose_victim(0, &[0, 1]), 0);
    }

    #[test]
    fn srrip_aging_preserves_relative_order() {
        let mut p = Srrip::new();
        p.attach(1, 3);
        for w in 0..3 {
            p.on_insert(0, w, &ctx());
        }
        p.on_hit(0, 0, &ctx()); // rrpv 0
        p.on_hit(0, 1, &ctx());
        p.on_hit(0, 1, &ctx()); // still 0
                                // way 2 at RRPV_LONG ages to max first.
        assert_eq!(p.choose_victim(0, &[0, 1, 2]), 2);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new(0);
        p.attach(1, 1);
        let mut distant = 0;
        for _ in 0..320 {
            p.on_insert(0, 0, &ctx());
            if p.table.rrpv[0] == RRPV_MAX {
                distant += 1;
            }
        }
        assert_eq!(distant, 320 - 10); // exactly 1/32 at long
    }

    #[test]
    fn drrip_follower_tracks_psel() {
        let mut p = Drrip::new(0);
        p.attach(DUEL_CONSTITUENCY * 2, 1);
        // Hammer the SRRIP leader set with misses: PSEL rises.
        for _ in 0..600 {
            p.on_insert(0, 0, &ctx());
        }
        assert!(p.psel > PSEL_INIT);
        // Follower sets now use BRRIP insertion (mostly distant).
        p.on_insert(5, 0, &ctx());
        let v = p.table.rrpv[5];
        assert!(v == RRPV_MAX || v == RRPV_LONG);
        // And hammering the BRRIP leader drives PSEL down.
        for _ in 0..1200 {
            p.on_insert(1, 0, &ctx());
        }
        assert!(p.psel < PSEL_INIT);
    }

    #[test]
    fn drrip_psel_saturates() {
        let mut p = Drrip::new(0);
        p.attach(DUEL_CONSTITUENCY, 1);
        for _ in 0..5000 {
            p.on_insert(0, 0, &ctx());
        }
        assert_eq!(p.psel, PSEL_MAX);
        for _ in 0..5000 {
            p.on_insert(1, 0, &ctx());
        }
        assert_eq!(p.psel, 0);
    }

    #[test]
    fn ta_drrip_psel_is_per_thread() {
        let mut p = TaDrrip::new(0);
        p.attach(DUEL_CONSTITUENCY, 1);
        let t0 = AccessCtx::from_thread(ThreadId(0));
        let t1 = AccessCtx::from_thread(ThreadId(1));
        // Thread 0 misses in its SRRIP leader (set 0).
        for _ in 0..100 {
            p.on_insert(0, 0, &t0);
        }
        // Thread 1 misses in its BRRIP leader (set 3).
        for _ in 0..100 {
            p.on_insert(3, 0, &t1);
        }
        assert!(p.psel[0] > PSEL_INIT);
        assert!(p.psel[1] < PSEL_INIT);
    }

    #[test]
    fn ta_drrip_ignores_foreign_leader_sets() {
        let mut p = TaDrrip::new(0);
        p.attach(DUEL_CONSTITUENCY, 1);
        let t5 = AccessCtx::from_thread(ThreadId(5));
        // Set 0 is thread 0's leader, not thread 5's: PSEL[5] unchanged.
        for _ in 0..100 {
            p.on_insert(0, 0, &t5);
        }
        assert_eq!(p.psel[5], PSEL_INIT);
    }

    #[test]
    fn victim_respects_candidates() {
        let mut p = Srrip::new();
        p.attach(1, 8);
        for w in 0..8 {
            p.on_insert(0, w, &ctx());
            p.on_hit(0, w, &ctx());
        }
        for _ in 0..10 {
            let v = p.choose_victim(0, &[6, 7]);
            assert!(v == 6 || v == 7);
        }
    }
}
