//! Replacement policies.
//!
//! Every policy the paper evaluates is implemented here as a
//! [`ReplacementPolicy`]: LRU, SRRIP/BRRIP/DRRIP (+ thread-aware DRRIP),
//! DIP, PDP, random, and the offline Belady MIN oracle.
//!
//! Policies own their per-line metadata (allocated in [`attach`]) and are
//! driven by the cache array through three callbacks: [`on_hit`],
//! [`choose_victim`], and [`on_insert`]. This keeps the trait object-safe
//! so caches can be configured with `Box<dyn ReplacementPolicy>` at
//! runtime, while the per-policy state layout stays private.
//!
//! [`attach`]: ReplacementPolicy::attach
//! [`on_hit`]: ReplacementPolicy::on_hit
//! [`choose_victim`]: ReplacementPolicy::choose_victim
//! [`on_insert`]: ReplacementPolicy::on_insert

mod belady;
mod dip;
mod lru;
mod pdp;
mod rrip;
mod ship;

pub use belady::{annotate_next_uses, Belady, NEVER_USED};
pub use dip::{Bip, Dip};
pub use lru::{Lru, RandomRepl};
pub use pdp::Pdp;
pub use rrip::{Brrip, Drrip, Srrip, TaDrrip};
pub use ship::Ship;

use crate::addr::{LineAddr, ThreadId};

/// Per-access context handed to policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// Issuing hardware thread (used by thread-aware policies).
    pub thread: ThreadId,
    /// For the offline Belady oracle: global index of this line's next use,
    /// or [`NEVER_USED`]. Online policies ignore it.
    pub next_use: u64,
    /// The line being accessed. Cache arrays fill this in before invoking
    /// policy callbacks, so signature-based policies ([`Ship`]) can derive
    /// per-line signatures; external callers need not set it.
    pub line: LineAddr,
}

impl AccessCtx {
    /// Context for a single-threaded access with no oracle information.
    pub fn new() -> Self {
        AccessCtx {
            thread: ThreadId(0),
            next_use: NEVER_USED,
            line: LineAddr(0),
        }
    }

    /// Context for an access from the given thread.
    pub fn from_thread(thread: ThreadId) -> Self {
        AccessCtx {
            thread,
            next_use: NEVER_USED,
            line: LineAddr(0),
        }
    }

    /// Attaches oracle next-use information (for [`Belady`]).
    pub fn with_next_use(mut self, next_use: u64) -> Self {
        self.next_use = next_use;
        self
    }

    /// Attaches the accessed line (done by cache arrays on every lookup).
    pub fn with_line(mut self, line: LineAddr) -> Self {
        self.line = line;
        self
    }
}

impl Default for AccessCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// A cache replacement policy driven by an external cache array.
///
/// The array calls [`attach`](Self::attach) once with its geometry, then:
///
/// - [`on_hit`](Self::on_hit) when a lookup hits,
/// - [`choose_victim`](Self::choose_victim) when an insertion needs to
///   evict (candidates are the ways the caller permits — the whole set, or
///   one partition's ways),
/// - [`on_insert`](Self::on_insert) after a new line lands in a way.
///
/// Policies must tolerate `choose_victim` being called with any non-empty
/// candidate subset: partitioned caches restrict candidates to one
/// partition's ways.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Binds the policy to an array of `sets × ways` lines, (re)allocating
    /// per-line metadata.
    fn attach(&mut self, sets: usize, ways: usize);

    /// Records a hit on the line at `(set, way)`.
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx);

    /// Picks a victim among `candidates` (way indices in `set`, all
    /// holding valid lines).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `candidates` is empty.
    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize;

    /// Records that a new line was inserted at `(set, way)`.
    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx);

    /// Human-readable policy name (for reports and plots).
    fn name(&self) -> &'static str;
}

impl ReplacementPolicy for Box<dyn ReplacementPolicy> {
    fn attach(&mut self, sets: usize, ways: usize) {
        (**self).attach(sets, ways)
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        (**self).on_hit(set, way, ctx)
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        (**self).choose_victim(set, candidates)
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        (**self).on_insert(set, way, ctx)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A runtime-selectable policy with *static* per-variant dispatch.
///
/// `Box<dyn ReplacementPolicy>` keeps cache construction flexible but
/// costs an indirect call per policy callback — three per access on the
/// hot simulation loop, none of them inlinable. `AnyPolicy` carries one
/// enum variant per built-in [`PolicyKind`] instead, so a
/// `SetAssocCache<AnyPolicy>` is a concrete type whose policy callbacks
/// compile to a jump table over inlined monomorphic bodies. Policies this
/// crate has never heard of still fit through the
/// [`Custom`](AnyPolicy::Custom) escape hatch, which preserves exactly
/// the old boxed behaviour.
///
/// Built-in variants behave bit-for-bit identically to the boxed policies
/// [`PolicyKind::build`] returns (property-tested in
/// `tests/properties.rs`).
///
/// # Examples
///
/// ```
/// use talus_sim::policy::{AnyPolicy, PolicyKind};
/// use talus_sim::{AccessCtx, CacheModel, LineAddr, SetAssocCache};
/// let mut cache = SetAssocCache::new(1024, 16, PolicyKind::Srrip.build_any(7), 42);
/// assert!(cache.access(LineAddr(3), &AccessCtx::new()).is_miss());
/// assert!(cache.access(LineAddr(3), &AccessCtx::new()).is_hit());
/// ```
#[derive(Debug)]
pub enum AnyPolicy {
    /// Least-recently-used.
    Lru(Lru),
    /// Static RRIP.
    Srrip(Srrip),
    /// Bimodal RRIP.
    Brrip(Brrip),
    /// Dynamic RRIP.
    Drrip(Drrip),
    /// Thread-aware DRRIP.
    TaDrrip(TaDrrip),
    /// Dynamic insertion policy.
    Dip(Dip),
    /// Protecting distance policy.
    Pdp(Pdp),
    /// SHiP-Mem.
    Ship(Ship),
    /// Uniform-random replacement.
    Random(RandomRepl),
    /// Offline Belady MIN (oracle-annotated traces only).
    Belady(Belady),
    /// Escape hatch for user-defined policies: dynamic dispatch, same as
    /// passing the box straight to the cache.
    Custom(Box<dyn ReplacementPolicy>),
}

/// Expands to a match over every `AnyPolicy` variant, binding the inner
/// policy as `$p` in `$body`. Keeps the nine delegation methods from
/// drifting out of sync variant by variant.
macro_rules! any_delegate {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::Lru($p) => $body,
            AnyPolicy::Srrip($p) => $body,
            AnyPolicy::Brrip($p) => $body,
            AnyPolicy::Drrip($p) => $body,
            AnyPolicy::TaDrrip($p) => $body,
            AnyPolicy::Dip($p) => $body,
            AnyPolicy::Pdp($p) => $body,
            AnyPolicy::Ship($p) => $body,
            AnyPolicy::Random($p) => $body,
            AnyPolicy::Belady($p) => $body,
            AnyPolicy::Custom($p) => $body,
        }
    };
}

impl ReplacementPolicy for AnyPolicy {
    fn attach(&mut self, sets: usize, ways: usize) {
        any_delegate!(self, p => p.attach(sets, ways))
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        any_delegate!(self, p => p.on_hit(set, way, ctx))
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        any_delegate!(self, p => p.choose_victim(set, candidates))
    }

    #[inline]
    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        any_delegate!(self, p => p.on_insert(set, way, ctx))
    }

    fn name(&self) -> &'static str {
        any_delegate!(self, p => p.name())
    }
}

impl From<Box<dyn ReplacementPolicy>> for AnyPolicy {
    fn from(boxed: Box<dyn ReplacementPolicy>) -> Self {
        AnyPolicy::Custom(boxed)
    }
}

/// Runtime-selectable policy kinds, mirroring the paper's evaluation
/// (§VII-A). Construction helper for experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Static RRIP with 2-bit re-reference prediction values.
    Srrip,
    /// Bimodal RRIP (thrash-resistant SRRIP variant).
    Brrip,
    /// Dynamic RRIP: set dueling between SRRIP and BRRIP.
    Drrip,
    /// Thread-aware DRRIP: per-thread set dueling.
    TaDrrip,
    /// Dynamic insertion policy: set dueling between LRU and BIP.
    Dip,
    /// Protecting distance policy.
    Pdp,
    /// SHiP with memory-region signatures (SHiP-Mem).
    Ship,
    /// Uniform-random replacement.
    Random,
}

impl PolicyKind {
    /// Instantiates the policy with a deterministic seed.
    pub fn build(self, seed: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Srrip => Box::new(Srrip::new()),
            PolicyKind::Brrip => Box::new(Brrip::new(seed)),
            PolicyKind::Drrip => Box::new(Drrip::new(seed)),
            PolicyKind::TaDrrip => Box::new(TaDrrip::new(seed)),
            PolicyKind::Dip => Box::new(Dip::new(seed)),
            PolicyKind::Pdp => Box::new(Pdp::new(seed)),
            PolicyKind::Ship => Box::new(Ship::new(seed)),
            PolicyKind::Random => Box::new(RandomRepl::new(seed)),
        }
    }

    /// Instantiates the policy as a statically dispatched [`AnyPolicy`]
    /// (same seeding, bit-for-bit identical behaviour to
    /// [`build`](Self::build), no virtual calls on the access path).
    pub fn build_any(self, seed: u64) -> AnyPolicy {
        match self {
            PolicyKind::Lru => AnyPolicy::Lru(Lru::new()),
            PolicyKind::Srrip => AnyPolicy::Srrip(Srrip::new()),
            PolicyKind::Brrip => AnyPolicy::Brrip(Brrip::new(seed)),
            PolicyKind::Drrip => AnyPolicy::Drrip(Drrip::new(seed)),
            PolicyKind::TaDrrip => AnyPolicy::TaDrrip(TaDrrip::new(seed)),
            PolicyKind::Dip => AnyPolicy::Dip(Dip::new(seed)),
            PolicyKind::Pdp => AnyPolicy::Pdp(Pdp::new(seed)),
            PolicyKind::Ship => AnyPolicy::Ship(Ship::new(seed)),
            PolicyKind::Random => AnyPolicy::Random(RandomRepl::new(seed)),
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::TaDrrip => "TA-DRRIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Pdp => "PDP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Random => "Random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_builders() {
        let c = AccessCtx::new();
        assert_eq!(c.thread, ThreadId(0));
        assert_eq!(c.next_use, NEVER_USED);
        let c = AccessCtx::from_thread(ThreadId(3)).with_next_use(42);
        assert_eq!(c.thread, ThreadId(3));
        assert_eq!(c.next_use, 42);
    }

    #[test]
    fn kinds_build_and_have_labels() {
        let kinds = [
            PolicyKind::Lru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Drrip,
            PolicyKind::TaDrrip,
            PolicyKind::Dip,
            PolicyKind::Pdp,
            PolicyKind::Ship,
            PolicyKind::Random,
        ];
        for k in kinds {
            let mut p = k.build(1);
            p.attach(4, 2);
            assert!(!p.name().is_empty());
            assert!(!k.label().is_empty());
            // Basic exercise through the boxed impl.
            let ctx = AccessCtx::new();
            p.on_insert(0, 0, &ctx);
            p.on_insert(0, 1, &ctx);
            p.on_hit(0, 1, &ctx);
            let v = p.choose_victim(0, &[0, 1]);
            assert!(v < 2);
        }
    }
}
