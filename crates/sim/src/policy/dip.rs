//! DIP: dynamic insertion policy (Qureshi et al., ISCA 2007).
//!
//! DIP duels LRU against BIP (bimodal insertion: new lines land in the LRU
//! position except for a 1/32 fraction inserted at MRU), protecting the
//! cache against thrashing while retaining LRU behaviour on friendly
//! workloads.

use super::{AccessCtx, ReplacementPolicy};

/// BIP inserts at MRU once every `1/ε` misses (paper: ε = 1/32).
const BIP_EPSILON: u64 = 32;
const DUEL_CONSTITUENCY: usize = 64;
const PSEL_MAX: i32 = 1023;
const PSEL_INIT: i32 = PSEL_MAX / 2;

/// Timestamp-ordered set state shared by DIP/BIP.
#[derive(Debug, Clone, Default)]
struct StampTable {
    stamps: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl StampTable {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.stamps = vec![0; sets * ways];
        self.ways = ways;
        self.clock = 0;
    }

    fn touch_mru(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    /// Place the line at the LRU position: older than everything currently
    /// in the set, so it is the next victim unless promoted by a hit.
    fn place_lru(&mut self, set: usize, way: usize) {
        let base = set * self.ways;
        let min = (0..self.ways)
            .filter(|&w| w != way)
            .map(|w| self.stamps[base + w])
            .min()
            .unwrap_or(0);
        self.stamps[base + way] = min.saturating_sub(1);
    }

    fn victim(&self, set: usize, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no victim candidates");
        *candidates
            .iter()
            .min_by_key(|&&w| self.stamps[set * self.ways + w])
            .expect("candidates is non-empty")
    }
}

/// Bimodal insertion policy: LRU eviction, but insertions default to the
/// LRU position. Thrash-resistant on its own; used as one side of DIP.
#[derive(Debug, Clone)]
pub struct Bip {
    table: StampTable,
    miss_count: u64,
}

impl Bip {
    /// Creates a BIP policy; `seed` offsets the bimodal phase.
    pub fn new(seed: u64) -> Self {
        Bip {
            table: StampTable::default(),
            miss_count: seed % BIP_EPSILON,
        }
    }
}

impl ReplacementPolicy for Bip {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.table.attach(sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.touch_mru(set, way);
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        self.table.victim(set, candidates)
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.miss_count += 1;
        if self.miss_count.is_multiple_of(BIP_EPSILON) {
            self.table.touch_mru(set, way);
        } else {
            self.table.place_lru(set, way);
        }
    }

    fn name(&self) -> &'static str {
        "BIP"
    }
}

/// DIP: set dueling between LRU and BIP insertion with a 10-bit PSEL.
#[derive(Debug, Clone)]
pub struct Dip {
    table: StampTable,
    bip_phase: u64,
    psel: i32,
}

impl Dip {
    /// Creates a DIP policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Dip {
            table: StampTable::default(),
            bip_phase: seed % BIP_EPSILON,
            psel: PSEL_INIT,
        }
    }

    fn bip_insert(&mut self, set: usize, way: usize) {
        self.bip_phase += 1;
        if self.bip_phase.is_multiple_of(BIP_EPSILON) {
            self.table.touch_mru(set, way);
        } else {
            self.table.place_lru(set, way);
        }
    }

    /// PSEL value (test hook).
    #[cfg(test)]
    fn psel(&self) -> i32 {
        self.psel
    }
}

impl ReplacementPolicy for Dip {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.table.attach(sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.touch_mru(set, way);
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        self.table.victim(set, candidates)
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        match set % DUEL_CONSTITUENCY {
            // LRU leader: a miss here votes for BIP.
            0 => {
                self.psel = (self.psel + 1).min(PSEL_MAX);
                self.table.touch_mru(set, way);
            }
            // BIP leader: a miss here votes for LRU.
            1 => {
                self.psel = (self.psel - 1).max(0);
                self.bip_insert(set, way);
            }
            _ => {
                if self.psel > PSEL_INIT {
                    self.bip_insert(set, way);
                } else {
                    self.table.touch_mru(set, way);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn bip_inserted_line_is_next_victim() {
        let mut p = Bip::new(0);
        p.attach(1, 4);
        for w in 0..4 {
            p.on_insert(0, w, &ctx());
        }
        p.on_hit(0, 0, &ctx());
        p.on_hit(0, 1, &ctx());
        p.on_hit(0, 2, &ctx());
        // Way 3 was inserted at LRU and never promoted.
        assert_eq!(p.choose_victim(0, &[0, 1, 2, 3]), 3);
    }

    #[test]
    fn bip_occasionally_inserts_at_mru() {
        let mut p = Bip::new(0);
        p.attach(1, 2);
        // 31 inserts at LRU, the 32nd at MRU.
        for i in 0..32 {
            p.on_insert(0, i % 2, &ctx());
        }
        // The 32nd insert (way 1) was MRU, so way 0 is the victim.
        assert_eq!(p.choose_victim(0, &[0, 1]), 0);
    }

    #[test]
    fn bip_promotes_on_hit() {
        let mut p = Bip::new(0);
        p.attach(1, 2);
        p.on_insert(0, 0, &ctx());
        p.on_insert(0, 1, &ctx());
        p.on_hit(0, 0, &ctx()); // way 0 now MRU
        assert_eq!(p.choose_victim(0, &[0, 1]), 1);
    }

    #[test]
    fn dip_thrashing_in_lru_leader_raises_psel() {
        let mut p = Dip::new(0);
        p.attach(DUEL_CONSTITUENCY * 2, 2);
        for _ in 0..200 {
            p.on_insert(0, 0, &ctx());
        }
        assert!(p.psel() > PSEL_INIT);
        // Misses in the BIP leader pull it back down.
        for _ in 0..400 {
            p.on_insert(1, 0, &ctx());
        }
        assert!(p.psel() < PSEL_INIT);
    }

    #[test]
    fn dip_follower_uses_lru_when_psel_low() {
        let mut p = Dip::new(0);
        p.attach(DUEL_CONSTITUENCY, 2);
        // PSEL at init: followers behave as LRU (insert at MRU).
        p.on_insert(2, 0, &ctx());
        p.on_insert(2, 1, &ctx());
        // Way 0 inserted first → LRU → victim.
        assert_eq!(p.choose_victim(2, &[0, 1]), 0);
    }

    #[test]
    fn dip_psel_saturates() {
        let mut p = Dip::new(0);
        p.attach(DUEL_CONSTITUENCY, 1);
        for _ in 0..5000 {
            p.on_insert(0, 0, &ctx());
        }
        assert_eq!(p.psel(), PSEL_MAX);
    }
}
