//! PDP: protecting distance policy (Duong et al., MICRO 2012).
//!
//! PDP protects each inserted or promoted line for a *protecting distance*
//! (PD) of subsequent accesses to its set. Victims are chosen among
//! unprotected lines; if every line is protected, PDP evicts the most
//! recently used one (as the Talus paper notes in §V-C, this is what lets
//! PDP occasionally beat pure bypassing).
//!
//! The PD is recomputed periodically from a sampled reuse-distance
//! histogram, maximising a hits-per-line-time estimate: protecting up to
//! distance `d` captures the hits with reuse distance ≤ d, at the cost of
//! occupying a line for up to `d` set-accesses.

use super::{AccessCtx, ReplacementPolicy};

/// Maximum reuse distance tracked (in set-local accesses). Distances are
/// measured per set, so this covers working sets far larger than the
/// associativity.
const MAX_RD: usize = 256;
/// Recompute the protecting distance every this many policy events.
const RECOMPUTE_EVERY: u64 = 64 * 1024;
/// Initial protecting distance before the first histogram solve.
const INITIAL_PD: u64 = 32;

/// Protecting distance policy.
#[derive(Debug, Clone)]
pub struct Pdp {
    /// Per-line timestamp of last insertion/promotion, in set-local ticks.
    protect_start: Vec<u64>,
    /// Per-set access counter (ticks).
    set_clock: Vec<u64>,
    ways: usize,
    /// Current protecting distance, in set-local accesses.
    pd: u64,
    /// Reuse-distance histogram; `rd_hist[d]` counts hits at distance `d`.
    rd_hist: Vec<u64>,
    /// Accesses that found no protected reuse within `MAX_RD`.
    rd_overflow: u64,
    events: u64,
    _seed: u64,
}

impl Pdp {
    /// Creates a PDP policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Pdp {
            protect_start: Vec::new(),
            set_clock: Vec::new(),
            ways: 0,
            pd: INITIAL_PD,
            rd_hist: vec![0; MAX_RD + 1],
            rd_overflow: 0,
            events: 0,
            _seed: seed,
        }
    }

    /// The protecting distance currently in force (test/report hook).
    pub fn protecting_distance(&self) -> u64 {
        self.pd
    }

    fn tick(&mut self, set: usize) -> u64 {
        self.set_clock[set] += 1;
        self.set_clock[set]
    }

    fn age(&self, set: usize, way: usize) -> u64 {
        self.set_clock[set].saturating_sub(self.protect_start[set * self.ways + way])
    }

    fn maybe_recompute(&mut self) {
        self.events += 1;
        if !self.events.is_multiple_of(RECOMPUTE_EVERY) {
            return;
        }
        self.pd = solve_pd(&self.rd_hist, self.rd_overflow, self.ways).max(1);
        // Exponential decay so the histogram adapts to phase changes.
        for h in &mut self.rd_hist {
            *h /= 2;
        }
        self.rd_overflow /= 2;
    }
}

/// Picks the protecting distance maximising estimated hits per unit of
/// line-time: `E(d) = hits(≤d) / (Σ_{i≤d} i·N_i + d·(N − hits(≤d)))`.
///
/// The numerator counts reuses captured by protecting for `d`; the
/// denominator is the total set-accesses during which lines sit protected
/// (reused lines occupy `i` ticks, non-reused ones the full `d`).
fn solve_pd(hist: &[u64], overflow: u64, _ways: usize) -> u64 {
    let total: u64 = hist.iter().sum::<u64>() + overflow;
    if total == 0 {
        return INITIAL_PD;
    }
    let mut best_d = 1u64;
    let mut best_e = 0.0f64;
    let mut hits = 0u64;
    let mut occupied = 0u64;
    for d in 1..hist.len() {
        hits += hist[d];
        occupied += d as u64 * hist[d];
        let unreused = total - hits;
        let denom = (occupied + d as u64 * unreused) as f64;
        if denom <= 0.0 {
            continue;
        }
        let e = hits as f64 / denom;
        if e > best_e {
            best_e = e;
            best_d = d as u64;
        }
    }
    best_d
}

impl ReplacementPolicy for Pdp {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.protect_start = vec![0; sets * ways];
        self.set_clock = vec![0; sets];
        self.ways = ways;
        self.pd = INITIAL_PD;
        self.rd_hist = vec![0; MAX_RD + 1];
        self.rd_overflow = 0;
        self.events = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        let now = self.tick(set);
        let idx = set * self.ways + way;
        let rd = now.saturating_sub(self.protect_start[idx]) as usize;
        if rd <= MAX_RD {
            self.rd_hist[rd] += 1;
        } else {
            self.rd_overflow += 1;
        }
        // Promotion re-protects the line.
        self.protect_start[idx] = now;
        self.maybe_recompute();
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        assert!(!candidates.is_empty(), "no victim candidates");
        // Prefer the unprotected line that has been idle longest.
        let mut best_unprot: Option<(u64, usize)> = None;
        let mut mru: Option<(u64, usize)> = None;
        for &w in candidates {
            let age = self.age(set, w);
            if age >= self.pd && best_unprot.is_none_or(|(a, _)| age > a) {
                best_unprot = Some((age, w));
            }
            if mru.is_none_or(|(a, _)| age < a) {
                mru = Some((age, w));
            }
        }
        match best_unprot {
            Some((_, w)) => w,
            // Everyone protected: evict the MRU line (smallest age).
            None => mru.expect("candidates is non-empty").1,
        }
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        let now = self.tick(set);
        self.protect_start[set * self.ways + way] = now;
        // A miss counts as an access beyond any tracked reuse distance.
        self.rd_overflow += 1;
        self.maybe_recompute();
    }

    fn name(&self) -> &'static str {
        "PDP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessCtx {
        AccessCtx::new()
    }

    #[test]
    fn evicts_oldest_unprotected_line() {
        let mut p = Pdp::new(0);
        p.attach(1, 4);
        p.pd = 2;
        for w in 0..4 {
            p.on_insert(0, w, &ctx()); // ticks 1..4
        }
        // Ages now: way0=3, way1=2, way2=1, way3=0. pd=2 → unprotected:
        // way0 (3), way1 (2). Oldest unprotected = way0.
        assert_eq!(p.choose_victim(0, &[0, 1, 2, 3]), 0);
    }

    #[test]
    fn evicts_mru_when_all_protected() {
        let mut p = Pdp::new(0);
        p.attach(1, 4);
        p.pd = 100;
        for w in 0..4 {
            p.on_insert(0, w, &ctx());
        }
        // All protected; MRU is the newest insert, way 3.
        assert_eq!(p.choose_victim(0, &[0, 1, 2, 3]), 3);
    }

    #[test]
    fn hit_reprotects_line() {
        let mut p = Pdp::new(0);
        p.attach(1, 2);
        p.pd = 3;
        p.on_insert(0, 0, &ctx()); // tick 1
        p.on_insert(0, 1, &ctx()); // tick 2
        p.on_hit(0, 0, &ctx()); // tick 3; way0 re-protected at 3
        p.tick(0); // ticks 4
        p.tick(0); // 5
                   // Ages: way0 = 2 (protected, pd=3), way1 = 3 (unprotected).
        assert_eq!(p.choose_victim(0, &[0, 1]), 1);
    }

    #[test]
    fn solver_prefers_capturing_short_reuses() {
        // 1000 hits at distance 4, nothing else: protecting to 4 is ideal.
        let mut hist = vec![0u64; MAX_RD + 1];
        hist[4] = 1000;
        assert_eq!(solve_pd(&hist, 0, 16), 4);
    }

    #[test]
    fn solver_ignores_uncapturable_tail() {
        // Short reuses at 2 plus a heavy overflow tail: protect only to 2.
        let mut hist = vec![0u64; MAX_RD + 1];
        hist[2] = 500;
        assert_eq!(solve_pd(&hist, 10_000, 16), 2);
    }

    #[test]
    fn solver_handles_empty_histogram() {
        let hist = vec![0u64; MAX_RD + 1];
        assert_eq!(solve_pd(&hist, 0, 16), INITIAL_PD);
    }

    #[test]
    fn solver_balances_two_populations() {
        // Reuses at 3 and at 200, with the far ones too thin to justify
        // holding lines 200 ticks.
        let mut hist = vec![0u64; MAX_RD + 1];
        hist[3] = 1000;
        hist[200] = 10;
        let pd = solve_pd(&hist, 0, 16);
        assert_eq!(pd, 3, "distant stragglers should not inflate pd");
        // If the far population dominates, protect far instead.
        let mut hist = vec![0u64; MAX_RD + 1];
        hist[3] = 10;
        hist[200] = 100_000;
        let pd = solve_pd(&hist, 0, 16);
        assert_eq!(pd, 200);
    }

    #[test]
    fn recompute_updates_pd_from_observed_reuses() {
        let mut p = Pdp::new(0);
        p.attach(4, 4);
        p.pd = 50;
        // Synthesize a workload with all reuses at distance 1, then force a
        // recompute by driving the event counter.
        for i in 0..RECOMPUTE_EVERY + 10 {
            let set = (i % 4) as usize;
            p.on_insert(set, 0, &ctx());
            p.on_hit(set, 0, &ctx());
        }
        assert!(
            p.protecting_distance() <= 2,
            "pd should collapse to ~1, got {}",
            p.protecting_distance()
        );
    }
}
