//! SHiP: Signature-based Hit Predictor (Wu et al., MICRO-44 2011).
//!
//! SHiP extends RRIP with *classification* (paper §II-A): each inserted
//! line carries a **signature**, and a table of saturating counters (the
//! SHCT) learns whether lines with that signature are ever re-referenced.
//! Lines whose signature predicts no reuse are inserted at distant RRPV —
//! effectively bypassed — while predicted-reused lines are inserted at
//! long RRPV like SRRIP.
//!
//! The original proposal evaluates three signature sources: instruction
//! PC, instruction sequence, and **memory region**. Our traces are
//! address-only (no PCs — see DESIGN.md's substitution table), so this
//! implementation uses memory-region signatures (SHiP-Mem): the upper
//! bits of the line address, hashed into the SHCT. For the synthetic
//! workloads here this captures the same classification signal as
//! SHiP-PC, because each workload component (scan, random working set,
//! …) occupies its own address region, just as each would be issued by
//! its own load PCs.
//!
//! Like the other high-performance policies, SHiP does not obey the
//! stack property, so its miss curve cannot be sampled by a single UMON —
//! it has the predictability problem that motivates Talus on LRU (§II-C).

use super::rrip::{RrpvTable, RRPV_LONG, RRPV_MAX};
use super::{AccessCtx, ReplacementPolicy};
use crate::hasher::H3Hasher;

/// SHCT entries (the SHiP paper uses 16K).
const SHCT_SIZE: usize = 1 << 14;
/// 3-bit saturating counters.
const SHCT_MAX: u8 = 7;
/// Initial counter value: weakly reused, so cold signatures are not
/// bypassed before the predictor has seen any evidence.
const SHCT_INIT: u8 = 1;
/// Lines per signature region: 64 lines = one 4 KB page.
const REGION_SHIFT: u32 = 6;
/// One in this many predicted-dead insertions goes in at long RRPV
/// anyway (BRRIP-style exploration). Without it a signature trained to
/// zero during cold-start churn could never prove itself again: distant
/// insertion means eviction before reuse, which keeps the counter at
/// zero — a permanent death spiral.
const EXPLORE_EPSILON: u64 = 32;

/// SHiP-Mem: SRRIP plus a signature history counter table that predicts,
/// per memory region, whether inserted lines will be reused.
///
/// # Examples
///
/// ```
/// use talus_sim::policy::Ship;
/// use talus_sim::{AccessCtx, CacheModel, LineAddr, SetAssocCache};
/// let mut cache = SetAssocCache::new(1024, 16, Ship::new(7), 42);
/// let ctx = AccessCtx::new();
/// cache.access(LineAddr(3), &ctx);
/// ```
#[derive(Debug, Clone)]
pub struct Ship {
    table: RrpvTable,
    /// Signature history counter table.
    shct: Vec<u8>,
    /// Per-line signature assigned at insertion.
    signature: Vec<u16>,
    /// Per-line outcome bit: has this line hit since insertion?
    reused: Vec<bool>,
    ways: usize,
    hasher: H3Hasher,
    /// Counts predicted-dead insertions for ε-exploration.
    explore_phase: u64,
}

impl Ship {
    /// Creates a SHiP policy; `seed` randomises the signature hash.
    pub fn new(seed: u64) -> Self {
        Ship {
            table: RrpvTable::default(),
            shct: vec![SHCT_INIT; SHCT_SIZE],
            signature: Vec::new(),
            reused: Vec::new(),
            ways: 0,
            hasher: H3Hasher::new(32, seed ^ 0x5417_9001),
            explore_phase: seed % EXPLORE_EPSILON,
        }
    }

    /// The signature of a line: its memory region hashed into the SHCT.
    fn signature_of(&self, line: crate::LineAddr) -> u16 {
        let region = line.value() >> REGION_SHIFT;
        (self.hasher.hash(region) % SHCT_SIZE as u64) as u16
    }

    /// The SHCT's current reuse counter for a line's signature (for tests
    /// and introspection).
    pub fn predicted_reuse(&self, line: crate::LineAddr) -> u8 {
        self.shct[self.signature_of(line) as usize]
    }
}

impl ReplacementPolicy for Ship {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.table.attach(sets, ways);
        self.signature = vec![0; sets * ways];
        self.reused = vec![false; sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.table.promote(set, way);
        let idx = set * self.ways + way;
        // First reuse of this line trains its signature upward.
        if !self.reused[idx] {
            self.reused[idx] = true;
            let sig = self.signature[idx] as usize;
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        }
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        let victim = self.table.choose_victim(set, candidates);
        // The victim is about to be evicted: a dead (never-reused) line
        // votes against its signature.
        let idx = set * self.ways + victim;
        if !self.reused[idx] {
            let sig = self.signature[idx] as usize;
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
        victim
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let sig = self.signature_of(ctx.line);
        let idx = set * self.ways + way;
        self.signature[idx] = sig;
        self.reused[idx] = false;
        // Zero counter: no observed reuse for this signature — insert
        // distant (bypass-like), except for the exploration fraction.
        // Otherwise insert at long, like SRRIP.
        let value = if self.shct[sig as usize] == 0 {
            self.explore_phase += 1;
            if self.explore_phase.is_multiple_of(EXPLORE_EPSILON) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        };
        self.table.insert(set, way, value);
    }

    fn name(&self) -> &'static str {
        "SHiP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{CacheModel, SetAssocCache};
    use crate::policy::Srrip;
    use crate::LineAddr;

    fn ctx_for(line: u64) -> AccessCtx {
        AccessCtx::new().with_line(LineAddr(line))
    }

    #[test]
    fn trains_down_on_dead_lines() {
        let mut p = Ship::new(1);
        p.attach(1, 2);
        let scan_line = LineAddr(0); // region 0
        let before = p.predicted_reuse(scan_line);
        // Insert two same-region lines, then evict both without reuse.
        p.on_insert(0, 0, &ctx_for(0));
        p.on_insert(0, 1, &ctx_for(1));
        let v = p.choose_victim(0, &[0, 1]);
        let _ = v;
        let after = p.predicted_reuse(scan_line);
        assert!(
            after < before,
            "dead eviction must train SHCT down: {before} -> {after}"
        );
    }

    #[test]
    fn trains_up_on_reuse() {
        let mut p = Ship::new(1);
        p.attach(1, 2);
        p.on_insert(0, 0, &ctx_for(0));
        let before = p.predicted_reuse(LineAddr(0));
        p.on_hit(0, 0, &ctx_for(0));
        assert_eq!(p.predicted_reuse(LineAddr(0)), before + 1);
        // Further hits on the same line do not double-count.
        p.on_hit(0, 0, &ctx_for(0));
        assert_eq!(p.predicted_reuse(LineAddr(0)), before + 1);
    }

    #[test]
    fn dead_signatures_insert_distant() {
        let mut p = Ship::new(1);
        p.attach(1, 4);
        // Drive region 0's counter to zero with dead evictions.
        for i in 0..16u64 {
            p.on_insert(0, 0, &ctx_for(i));
            p.choose_victim(0, &[0]);
        }
        assert_eq!(p.predicted_reuse(LineAddr(0)), 0);
        // The next insert from that region lands at distant RRPV.
        p.on_insert(0, 2, &ctx_for(3));
        assert_eq!(p.table.rrpv[2], RRPV_MAX);
        // A fresh region still gets the SRRIP insertion.
        p.on_insert(0, 3, &ctx_for(1 << 30));
        assert_eq!(p.table.rrpv[3], RRPV_LONG);
    }

    /// The classification pay-off the SHiP paper reports: a reused
    /// working set mixed with a cyclic scan that does not fit. SHiP
    /// learns the scan regions are dead and effectively bypasses them,
    /// protecting the working set; SRRIP keeps inserting scan lines at
    /// long RRPV and churns.
    ///
    /// The scan is cyclic (like libquantum's), not an unbounded stream:
    /// with memory-region signatures, an infinite stream of fresh regions
    /// would saturate the whole SHCT through hash collisions — the known
    /// weakness of SHiP-Mem relative to SHiP-PC, where a scan maps to the
    /// single PC of the scanning load.
    #[test]
    fn ship_beats_srrip_on_scan_plus_reuse() {
        let run = |mut cache: SetAssocCache<Box<dyn ReplacementPolicy>>| {
            let working = 1024u64; // fits comfortably in cache
            let scan_len = 32_768u64; // 16x the cache: pure thrash
            let mut scan = 0u64;
            let mut misses_after_warmup = 0u64;
            let total = 600_000;
            for i in 0..total {
                let (line, is_ws) = if i % 2 == 0 {
                    (LineAddr((i / 2) % working), true)
                } else {
                    scan += 1;
                    (LineAddr((1 << 30) + scan % scan_len), false)
                };
                let ctx = AccessCtx::new(); // arrays enrich with the line
                let r = cache.access(line, &ctx);
                if i > total / 2 && is_ws && r.is_miss() {
                    misses_after_warmup += 1;
                }
            }
            misses_after_warmup
        };
        let ship = run(SetAssocCache::new(2048, 16, Box::new(Ship::new(3)), 9));
        let srrip = run(SetAssocCache::new(2048, 16, Box::new(Srrip::new()), 9));
        assert!(
            ship < srrip / 2,
            "SHiP should protect the reused working set: SHiP {ship} vs SRRIP {srrip} misses"
        );
    }

    #[test]
    fn victim_respects_candidates() {
        let mut p = Ship::new(1);
        p.attach(1, 8);
        for w in 0..8 {
            p.on_insert(0, w, &ctx_for(w as u64));
        }
        for _ in 0..10 {
            let v = p.choose_victim(0, &[5, 6]);
            assert!(v == 5 || v == 6);
        }
    }
}
