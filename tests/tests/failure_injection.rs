//! Failure injection: Talus's control loop must degrade gracefully when
//! its inputs are hostile — empty monitors, garbage curves, flat curves,
//! absurd targets — because in hardware a bad reconfiguration simply must
//! not take the cache down.

use proptest::prelude::*;
use talus_core::{plan, MissCurve, TalusOptions};
use talus_sim::monitor::Monitor;
use talus_sim::part::IdealPartitioned;
use talus_sim::{AccessCtx, LineAddr, PartitionId, TalusCache, TalusCacheConfig, TalusSingleCache};

/// A monitor that reports pathological curves on demand.
#[derive(Debug)]
struct HostileMonitor {
    mode: HostileMode,
    recorded: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostileMode {
    /// Never sees any traffic: all-miss curve.
    Cold,
    /// A completely flat curve: capacity never helps.
    Flat,
    /// A rising curve (more cache = more misses — broken hardware).
    Rising,
    /// A single-point curve (degenerate domain).
    SinglePoint,
}

impl Monitor for HostileMonitor {
    fn record(&mut self, _line: LineAddr) {
        self.recorded += 1;
    }

    fn curve(&self) -> MissCurve {
        match self.mode {
            HostileMode::Cold | HostileMode::Flat => {
                MissCurve::from_samples(&[0.0, 4096.0, 16384.0], &[1.0, 1.0, 1.0])
                    .expect("flat curve is valid")
            }
            HostileMode::Rising => {
                MissCurve::from_samples(&[0.0, 4096.0, 16384.0], &[0.1, 0.5, 1.0])
                    .expect("rising curve is valid")
            }
            HostileMode::SinglePoint => {
                MissCurve::from_samples(&[0.0], &[1.0]).expect("single point is valid")
            }
        }
    }

    fn sampled_accesses(&self) -> u64 {
        self.recorded
    }

    fn reset(&mut self) {
        self.recorded = 0;
    }
}

/// Whatever the monitor claims, accesses must keep flowing and stats must
/// keep adding up — a bad curve can waste capacity but never wedge the
/// cache.
#[test]
fn hostile_monitors_never_wedge_the_cache() {
    for mode in [
        HostileMode::Cold,
        HostileMode::Flat,
        HostileMode::Rising,
        HostileMode::SinglePoint,
    ] {
        let cache = IdealPartitioned::new(2048, 2);
        let monitor = HostileMonitor { mode, recorded: 0 };
        let mut talus = TalusSingleCache::new(cache, monitor, 10_000, TalusCacheConfig::new());
        let ctx = AccessCtx::new();
        let n = 100_000u64;
        for i in 0..n {
            talus.access(LineAddr(i % 1024), &ctx);
        }
        let stats = talus.stats();
        assert_eq!(stats.accesses(), n, "{mode:?}: accesses lost");
        // The 1024-line working set fits in 2048 lines: even under a
        // garbage plan at least the α partition holds a useful fraction.
        assert!(stats.hit_rate() > 0.0, "{mode:?}: cache wedged");
    }
}

/// Targets beyond the monitored curve run *unpartitioned* (there is
/// nothing to bridge past the last vertex) instead of failing — the
/// designed graceful degradation when a cache outgrows its monitor.
#[test]
fn beyond_curve_targets_run_unpartitioned() {
    let cache = IdealPartitioned::new(4096, 2);
    let mut talus = TalusCache::new(cache, 1, TalusCacheConfig::new());
    let curve =
        MissCurve::from_samples(&[0.0, 1024.0, 2048.0], &[1.0, 0.6, 0.1]).expect("valid curve");
    let plans = talus
        .reconfigure(&[4096], &[curve])
        .expect("beyond-domain target degrades");
    assert!(
        plans[0].shadow().is_none(),
        "no shadow bridge past the curve"
    );
    assert_eq!(
        talus.sampling_rate(PartitionId(0)),
        1.0,
        "everything to alpha"
    );
}

/// `plan` rejects non-finite and negative sizes without panicking, and
/// treats absurdly large (but finite) sizes as beyond-domain
/// unpartitioned plans.
#[test]
fn plan_rejects_bad_sizes() {
    let curve = MissCurve::from_samples(&[0.0, 100.0, 200.0], &[1.0, 0.5, 0.1]).expect("valid");
    assert!(plan(&curve, -1.0, TalusOptions::new()).is_err());
    assert!(plan(&curve, f64::NAN, TalusOptions::new()).is_err());
    assert!(plan(&curve, f64::INFINITY, TalusOptions::new()).is_err());
    let huge = plan(&curve, 1e18, TalusOptions::new()).expect("finite huge size degrades");
    assert!(huge.shadow().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reconfiguring with arbitrary monotone curves and arbitrary splits
    /// always yields a sampler rate in [0, 1] and hardware requests that
    /// never exceed capacity.
    #[test]
    fn reconfigure_invariants_hold_for_arbitrary_curves(
        seed in any::<u64>(),
        target_pct in 1u64..=100,
    ) {
        // Random monotone curve over [0, 2·capacity].
        let capacity = 4096u64;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 8 + (next() % 24) as usize;
        let mut sizes = Vec::with_capacity(n);
        let mut misses = Vec::with_capacity(n);
        let mut m = 50.0 + (next() % 100) as f64;
        for i in 0..n {
            sizes.push(i as f64 * (2.0 * capacity as f64) / (n - 1) as f64);
            misses.push(m);
            m = (m - (next() % 16) as f64).max(0.0);
        }
        let curve = MissCurve::from_samples(&sizes, &misses).expect("valid random curve");
        let cache = IdealPartitioned::new(capacity, 2);
        let mut talus = TalusCache::new(cache, 1, TalusCacheConfig::new());
        let target = capacity * target_pct / 100;
        let plans = talus.reconfigure(&[target], &[curve]).expect("target is in-domain");
        let rate = talus.sampling_rate(PartitionId(0));
        prop_assert!((0.0..=1.0).contains(&rate), "rate {rate}");
        prop_assert_eq!(plans.len(), 1);
        // The plan's expected misses can never exceed the all-miss rate.
        prop_assert!(plans[0].expected_misses() <= 151.0);
    }
}
