//! Failure injection: Talus's control loop must degrade gracefully when
//! its inputs are hostile — empty monitors, garbage curves, flat curves,
//! absurd targets — because in hardware a bad reconfiguration simply must
//! not take the cache down.

use proptest::prelude::*;
use talus_core::{plan, MissCurve, TalusOptions};
use talus_sim::monitor::Monitor;
use talus_sim::part::IdealPartitioned;
use talus_sim::{AccessCtx, LineAddr, PartitionId, TalusCache, TalusCacheConfig, TalusSingleCache};

/// A monitor that reports pathological curves on demand.
#[derive(Debug)]
struct HostileMonitor {
    mode: HostileMode,
    recorded: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HostileMode {
    /// Never sees any traffic: all-miss curve.
    Cold,
    /// A completely flat curve: capacity never helps.
    Flat,
    /// A rising curve (more cache = more misses — broken hardware).
    Rising,
    /// A single-point curve (degenerate domain).
    SinglePoint,
}

impl Monitor for HostileMonitor {
    fn record(&mut self, _line: LineAddr) {
        self.recorded += 1;
    }

    fn curve(&self) -> MissCurve {
        match self.mode {
            HostileMode::Cold | HostileMode::Flat => {
                MissCurve::from_samples(&[0.0, 4096.0, 16384.0], &[1.0, 1.0, 1.0])
                    .expect("flat curve is valid")
            }
            HostileMode::Rising => {
                MissCurve::from_samples(&[0.0, 4096.0, 16384.0], &[0.1, 0.5, 1.0])
                    .expect("rising curve is valid")
            }
            HostileMode::SinglePoint => {
                MissCurve::from_samples(&[0.0], &[1.0]).expect("single point is valid")
            }
        }
    }

    fn sampled_accesses(&self) -> u64 {
        self.recorded
    }

    fn reset(&mut self) {
        self.recorded = 0;
    }
}

/// Whatever the monitor claims, accesses must keep flowing and stats must
/// keep adding up — a bad curve can waste capacity but never wedge the
/// cache.
#[test]
fn hostile_monitors_never_wedge_the_cache() {
    for mode in [
        HostileMode::Cold,
        HostileMode::Flat,
        HostileMode::Rising,
        HostileMode::SinglePoint,
    ] {
        let cache = IdealPartitioned::new(2048, 2);
        let monitor = HostileMonitor { mode, recorded: 0 };
        let mut talus = TalusSingleCache::new(cache, monitor, 10_000, TalusCacheConfig::new());
        let ctx = AccessCtx::new();
        let n = 100_000u64;
        for i in 0..n {
            talus.access(LineAddr(i % 1024), &ctx);
        }
        let stats = talus.stats();
        assert_eq!(stats.accesses(), n, "{mode:?}: accesses lost");
        // The 1024-line working set fits in 2048 lines: even under a
        // garbage plan at least the α partition holds a useful fraction.
        assert!(stats.hit_rate() > 0.0, "{mode:?}: cache wedged");
    }
}

/// Targets beyond the monitored curve run *unpartitioned* (there is
/// nothing to bridge past the last vertex) instead of failing — the
/// designed graceful degradation when a cache outgrows its monitor.
#[test]
fn beyond_curve_targets_run_unpartitioned() {
    let cache = IdealPartitioned::new(4096, 2);
    let mut talus = TalusCache::new(cache, 1, TalusCacheConfig::new());
    let curve =
        MissCurve::from_samples(&[0.0, 1024.0, 2048.0], &[1.0, 0.6, 0.1]).expect("valid curve");
    let plans = talus
        .reconfigure(&[4096], &[curve])
        .expect("beyond-domain target degrades");
    assert!(
        plans[0].shadow().is_none(),
        "no shadow bridge past the curve"
    );
    assert_eq!(
        talus.sampling_rate(PartitionId(0)),
        1.0,
        "everything to alpha"
    );
}

/// `plan` rejects non-finite and negative sizes without panicking, and
/// treats absurdly large (but finite) sizes as beyond-domain
/// unpartitioned plans.
#[test]
fn plan_rejects_bad_sizes() {
    let curve = MissCurve::from_samples(&[0.0, 100.0, 200.0], &[1.0, 0.5, 0.1]).expect("valid");
    assert!(plan(&curve, -1.0, TalusOptions::new()).is_err());
    assert!(plan(&curve, f64::NAN, TalusOptions::new()).is_err());
    assert!(plan(&curve, f64::INFINITY, TalusOptions::new()).is_err());
    let huge = plan(&curve, 1e18, TalusOptions::new()).expect("finite huge size degrades");
    assert!(huge.shadow().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reconfiguring with arbitrary monotone curves and arbitrary splits
    /// always yields a sampler rate in [0, 1] and hardware requests that
    /// never exceed capacity.
    #[test]
    fn reconfigure_invariants_hold_for_arbitrary_curves(
        seed in any::<u64>(),
        target_pct in 1u64..=100,
    ) {
        // Random monotone curve over [0, 2·capacity].
        let capacity = 4096u64;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 8 + (next() % 24) as usize;
        let mut sizes = Vec::with_capacity(n);
        let mut misses = Vec::with_capacity(n);
        let mut m = 50.0 + (next() % 100) as f64;
        for i in 0..n {
            sizes.push(i as f64 * (2.0 * capacity as f64) / (n - 1) as f64);
            misses.push(m);
            m = (m - (next() % 16) as f64).max(0.0);
        }
        let curve = MissCurve::from_samples(&sizes, &misses).expect("valid random curve");
        let cache = IdealPartitioned::new(capacity, 2);
        let mut talus = TalusCache::new(cache, 1, TalusCacheConfig::new());
        let target = capacity * target_pct / 100;
        let plans = talus.reconfigure(&[target], &[curve]).expect("target is in-domain");
        let rate = talus.sampling_rate(PartitionId(0));
        prop_assert!((0.0..=1.0).contains(&rate), "rate {rate}");
        prop_assert_eq!(plans.len(), 1);
        // The plan's expected misses can never exceed the all-miss rate.
        prop_assert!(plans[0].expected_misses() <= 151.0);
    }
}

// ---------------------------------------------------------------------
// RPC failure injection: the network front-end must keep the plane
// consistent when clients die mid-frame, die mid-epoch, or send
// garbage. Frames are fully received before they are decoded and
// decoded before they are applied, so every failure below is absorbed
// by closing one connection.
// ---------------------------------------------------------------------

mod rpc {
    use std::sync::Arc;

    use talus_core::MissCurve;
    use talus_serve::wire::{encode_request, Request, SubmitEntry};
    use talus_serve::{RpcClient, RpcServer, ServerHandle, ShardedReconfigService};

    fn curve() -> MissCurve {
        MissCurve::from_samples(&[0.0, 256.0, 512.0], &[8.0, 8.0, 1.0]).expect("valid")
    }

    fn loopback(shards: usize) -> (Arc<ShardedReconfigService>, ServerHandle) {
        let service = Arc::new(ShardedReconfigService::new(shards));
        let handle = RpcServer::bind("127.0.0.1:0", Arc::clone(&service))
            .expect("bind loopback")
            .spawn()
            .expect("spawn accept loop");
        (service, handle)
    }

    /// Spin until the server-side condition holds (the handler thread
    /// runs asynchronously after the client's bytes arrive).
    fn eventually(mut condition: impl FnMut() -> bool, what: &str) {
        for _ in 0..2000 {
            if condition() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    /// A client that dies mid-frame drops its batch atomically: the
    /// partially transmitted submission never dirties the plane, and
    /// the next epoch plans normally from other clients' data.
    #[test]
    fn disconnect_mid_frame_drops_the_batch_atomically() {
        let (service, handle) = loopback(2);
        let mut good = RpcClient::connect(handle.local_addr()).expect("connect");
        let id = good.register(512, 1).expect("register");

        // A hostile client sends 60% of a valid submit frame, then dies.
        let frame = encode_request(&Request::Submit {
            entries: vec![SubmitEntry {
                id: id.value(),
                tenant: 0,
                curve: curve(),
            }],
        });
        let mut hostile = RpcClient::connect(handle.local_addr()).expect("connect");
        hostile
            .send_raw(&frame[..frame.len() * 6 / 10])
            .expect("send");
        hostile.abort();

        // The partial batch can never be applied — the frame never
        // completed, so it never reached the decoder, let alone the
        // plane. No waiting needed: this holds at every instant.
        assert_eq!(
            service.pending(),
            0,
            "partial frame must not dirty the plane"
        );

        // The plane still serves: a real submission plans normally.
        good.submit(id, 0, curve()).expect("submit");
        let report = good.run_epoch().expect("epoch");
        assert_eq!(report.planned, vec![id]);
        assert_eq!(service.snapshot(id).expect("published").updates, 1);
        handle.shutdown();
    }

    /// A client that requests an epoch and dies before reading the
    /// reply leaves the plane consistent: the fully received request
    /// still runs, the epoch counter stays monotone, and the next
    /// client's epoch follows it seamlessly.
    #[test]
    fn disconnect_mid_epoch_leaves_the_plane_consistent() {
        let (service, handle) = loopback(2);
        let mut setup = RpcClient::connect(handle.local_addr()).expect("connect");
        let id = setup.register(512, 1).expect("register");
        setup.submit(id, 0, curve()).expect("submit");

        // Fire run_epoch and vanish without reading the reply.
        let mut doomed = RpcClient::connect(handle.local_addr()).expect("connect");
        doomed
            .send_raw(&encode_request(&Request::RunEpoch))
            .expect("send");
        doomed.abort();

        // The request was complete, so the epoch runs; the write of the
        // reply fails into the closed socket and only that connection dies.
        eventually(|| service.epochs() >= 1, "the orphaned epoch to run");
        eventually(|| service.pending() == 0, "the epoch to drain the queue");
        let snap = service.snapshot(id).expect("the orphaned epoch published");
        assert_eq!(snap.version, 1);

        // The plane keeps serving: the next epoch continues the count.
        // (A fresh curve — a bit-identical resubmission of already
        // planned data is an idempotent no-op and would plan nothing.)
        let fresh = MissCurve::from_samples(&[0.0, 256.0, 512.0], &[9.0, 8.0, 1.0]).expect("valid");
        setup.submit(id, 0, fresh).expect("submit");
        let report = setup.run_epoch().expect("epoch");
        assert_eq!(report.epoch, 2, "epoch counter stayed monotone");
        assert_eq!(report.planned, vec![id]);
        assert_eq!(service.snapshot(id).expect("published").version, 2);
        handle.shutdown();
    }

    /// Garbage — a hostile length prefix, a wrong version, random
    /// bytes — closes that connection and nothing else: registered
    /// state survives and new connections serve normally.
    #[test]
    fn garbage_frames_close_one_connection_without_harming_the_plane() {
        let (service, handle) = loopback(1);
        let mut good = RpcClient::connect(handle.local_addr()).expect("connect");
        let id = good.register(512, 1).expect("register");

        for garbage in [
            u32::MAX.to_le_bytes().to_vec(),             // hostile length prefix
            vec![2, 0, 0, 0, 9, 0x06],                   // wrong version
            vec![2, 0, 0, 0, 1, 0x7F],                   // unknown opcode
            vec![5, 0, 0, 0, 1, 0x02, 0xAB, 0xCD, 0xEF], // truncated body
        ] {
            let mut hostile = RpcClient::connect(handle.local_addr()).expect("connect");
            hostile.send_raw(&garbage).expect("send");
            // The server answers garbage by closing the connection: the
            // next read sees clean EOF (or a reset), never a reply.
            match hostile.recv_raw() {
                Ok(None) | Err(_) => {}
                Ok(Some(resp)) => panic!("server replied {resp:?} to garbage"),
            }
        }

        // The plane is untouched and the good connection still works.
        assert_eq!(service.registered(), 1);
        good.ping().expect("good connection survives");
        good.submit(id, 0, curve()).expect("submit");
        assert_eq!(good.run_epoch().expect("epoch").planned, vec![id]);
        handle.shutdown();
    }

    /// Connection isolation: a client dying mid-frame does not disturb
    /// another client's in-progress session on the same plane.
    #[test]
    fn one_clients_death_does_not_disturb_anothers_session() {
        let (service, handle) = loopback(2);
        let mut alice = RpcClient::connect(handle.local_addr()).expect("connect");
        let mut bob = RpcClient::connect(handle.local_addr()).expect("connect");
        let a = alice.register(512, 1).expect("register");
        let b = bob.register(512, 1).expect("register");
        assert_ne!(a, b);

        alice.submit(a, 0, curve()).expect("submit");
        // Bob dies mid-frame between Alice's submit and her epoch.
        let frame = encode_request(&Request::Submit {
            entries: vec![SubmitEntry {
                id: b.value(),
                tenant: 0,
                curve: curve(),
            }],
        });
        bob.send_raw(&frame[..10]).expect("send");
        bob.abort();

        let report = alice.run_epoch().expect("epoch");
        assert_eq!(report.planned, vec![a], "only Alice's cache was dirty");
        assert!(
            service.snapshot(b).is_none(),
            "Bob's torn submit never landed"
        );
        handle.shutdown();
    }

    /// Flooding resubmissions between epochs is absorbed by dirty-queue
    /// dedup: a thousand submissions for one cache cost one replan.
    #[test]
    fn submission_floods_coalesce_to_one_replan() {
        let (service, handle) = loopback(1);
        let mut client = RpcClient::connect(handle.local_addr()).expect("connect");
        let id = client.register(512, 1).expect("register");
        for _ in 0..1000 {
            client.submit(id, 0, curve()).expect("submit");
        }
        assert_eq!(service.pending(), 1, "dirty queue deduplicates the flood");
        let report = client.run_epoch().expect("epoch");
        assert_eq!(report.planned, vec![id]);
        let snap = service.snapshot(id).expect("published");
        assert_eq!(snap.version, 1, "one replan for a thousand submissions");
        // Bit-identical resubmissions are deduplicated at the shard (the
        // idempotent-retry contract), so the flood counts as one update.
        assert_eq!(snap.updates, 1, "identical resubmissions coalesce");
        handle.shutdown();
    }
}

// ---------------------------------------------------------------------
// Store failure injection: the journal's whole reason to exist is dying
// at the worst possible moment. Here the process is actually killed —
// `std::process::abort()` mid-epoch, between a shard's epoch-cut record
// and its plan records — and a fresh process must warm-restart from
// whatever bytes made it to disk.
// ---------------------------------------------------------------------

mod store {
    use std::process::Command;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use talus_core::MissCurve;
    use talus_partition::{CachePlan, Planner};
    use talus_serve::{CacheSpec, ShardedReconfigService};
    use talus_store::{Store, StoreSink};

    /// Env vars that turn the `crash_victim` test into the doomed child.
    const CRASH_DIR: &str = "TALUS_STORE_CRASH_DIR";
    const KILL_AFTER: &str = "TALUS_STORE_KILL_AFTER";

    const CACHES: u64 = 5;
    const SHARDS: usize = 2;

    fn curve(seed: u64) -> MissCurve {
        let bend = 256.0 + (seed % 4) as f64 * 64.0;
        MissCurve::from_samples(&[0.0, bend, 1024.0], &[9.0, 8.0, 1.0]).expect("valid")
    }

    /// A sink that journals faithfully, then kills the process dead —
    /// no unwinding, no destructors, no flush beyond what the store
    /// already wrote — on the Nth published plan. Because it runs under
    /// the shard's registry lock, the abort lands exactly between an
    /// epoch's cut record and the rest of its plan records.
    #[derive(Debug)]
    struct AbortNthPlan {
        inner: Arc<Store>,
        kill_after: u64,
        plans: AtomicU64,
    }

    impl StoreSink for AbortNthPlan {
        fn shards(&self) -> usize {
            self.inner.shards()
        }
        fn register(&self, id: u64, capacity: u64, tenants: u32, planner: &Planner) {
            self.inner.register(id, capacity, tenants, planner);
        }
        fn deregister(&self, id: u64) {
            self.inner.deregister(id);
        }
        fn submit(&self, id: u64, tenant: u32, curve: &MissCurve) {
            self.inner.submit(id, tenant, curve);
        }
        fn epoch_cut(&self, shard: usize, epoch: u64, drained: &[u64]) {
            self.inner.epoch_cut(shard, epoch, drained);
        }
        fn plan(&self, id: u64, epoch: u64, version: u64, updates: u64, plan: &CachePlan) {
            if self.plans.fetch_add(1, Ordering::Relaxed) + 1 == self.kill_after {
                // The doomed plan is dropped on the floor and the process
                // dies mid-publication, locks held and all.
                std::process::abort();
            }
            self.inner.plan(id, epoch, version, updates, plan);
        }
    }

    /// The doomed child: a no-op under normal test runs; when the parent
    /// sets the env vars, journals a scripted history and aborts inside
    /// `run_epoch`, mid-publication.
    #[test]
    fn crash_victim() {
        let Ok(dir) = std::env::var(CRASH_DIR) else {
            return; // normal test run: the parent below drives this
        };
        let kill_after: u64 = std::env::var(KILL_AFTER)
            .expect("parent sets the kill point")
            .parse()
            .expect("kill point is a number");
        let store = Arc::new(Store::open(&dir, SHARDS).expect("open store"));
        let sink = Arc::new(AbortNthPlan {
            inner: store,
            kill_after,
            plans: AtomicU64::new(0),
        });
        let plane = ShardedReconfigService::new(SHARDS).with_sink(sink);
        let ids: Vec<_> = (0..CACHES)
            .map(|_| plane.register(CacheSpec::new(1024, 1).with_planner(Planner::new(64))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            plane.submit(*id, 0, curve(i as u64)).expect("registered");
        }
        // Publication aborts the process partway through this call.
        plane.run_epoch();
        unreachable!("the sink must abort before the epoch completes ({kill_after})");
    }

    /// Re-runs this test binary as the `crash_victim` child with the
    /// given kill point; returns once it has died by abort.
    fn spawn_victim(dir: &std::path::Path, kill_after: u64) {
        let exe = std::env::current_exe().expect("own test binary");
        let status = Command::new(exe)
            .args(["store::crash_victim", "--exact", "--nocapture"])
            .env(CRASH_DIR, dir)
            .env(KILL_AFTER, kill_after.to_string())
            .status()
            .expect("spawn crash victim");
        assert!(
            !status.success(),
            "the victim must die by abort, got {status}"
        );
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("talus-crash-test-{tag}-{}", std::process::id()));
        // A previous failed run may have left debris.
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    /// The headline injection: a real process killed by `abort()` between
    /// an epoch-cut record and its plan records. The journal left on disk
    /// must warm-restart a fresh plane that (a) has every cache, (b) has
    /// exactly the plans whose records landed before the abort, and
    /// (c) is fully live — the missing plans come back on the next epoch,
    /// exactly like an epoch that failed mid-publish.
    #[test]
    fn process_death_mid_epoch_leaves_a_recoverable_journal() {
        for kill_after in 1..=3u64 {
            let dir = temp_dir(&format!("mid-epoch-{kill_after}"));
            spawn_victim(&dir, kill_after);

            let store = Store::open(&dir, SHARDS).expect("journal opens after abort");
            let plane = ShardedReconfigService::new(SHARDS);
            let summary = plane.restore(&store).expect("journal restores after abort");

            // Every registration and curve landed before the epoch began;
            // the abort could only eat plan records.
            assert_eq!(summary.caches, CACHES as usize, "kill at {kill_after}");
            assert_eq!(plane.epochs(), 1, "the cut record recovered the epoch");
            assert_eq!(
                summary.snapshots,
                kill_after as usize - 1,
                "exactly the pre-abort plan records replay"
            );

            // Liveness: handles are recoverable, curves flow, and the
            // caches the abort robbed of their plan get one now.
            let ids = plane.cache_ids();
            assert_eq!(ids.len(), CACHES as usize);
            for (i, id) in ids.iter().enumerate() {
                plane
                    .submit(*id, 0, curve(i as u64))
                    .expect("still serving");
            }
            plane.run_until_clean();
            for id in &ids {
                let snap = plane.snapshot(*id).expect("planned after recovery");
                assert!(snap.version >= 1);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Torn-write injection: garbage appended to a shard file (a crash
    /// mid-`write`, a partial sector, cosmic rays) is dropped at open —
    /// the intact prefix replays and appending continues cleanly.
    #[test]
    fn torn_garbage_tail_is_dropped_and_the_journal_stays_appendable() {
        let dir = temp_dir("torn-tail");
        let store = Arc::new(Store::open(&dir, 1).expect("open store"));
        let plane =
            ShardedReconfigService::new(1).with_sink(Arc::clone(&store) as Arc<dyn StoreSink>);
        let id = plane.register(CacheSpec::new(1024, 1).with_planner(Planner::new(64)));
        plane.submit(id, 0, curve(0)).expect("registered");
        plane.run_epoch();
        assert_eq!(store.last_error(), None);
        drop(plane);
        drop(store);

        let path = dir.join("shard-000.talus");
        let clean_len = std::fs::metadata(&path).expect("journal exists").len();
        let mut bytes = std::fs::read(&path).expect("journal bytes");
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x00, 0x00]);
        std::fs::write(&path, &bytes).expect("inject garbage");

        let store = Arc::new(Store::open(&dir, 1).expect("reopen"));
        assert_eq!(store.recovery().torn_bytes(), 7, "the garbage was dropped");
        assert_eq!(
            std::fs::metadata(&path).expect("journal exists").len(),
            clean_len,
            "the file was truncated back to the intact prefix"
        );
        let plane = ShardedReconfigService::new(1);
        let summary = plane.restore(&store).expect("intact prefix restores");
        assert_eq!(summary.caches, 1);
        assert_eq!(summary.snapshots, 1);

        // Appends continue after the truncation point.
        let plane = plane.with_sink(store as Arc<dyn StoreSink>);
        let ids = plane.cache_ids();
        plane.submit(ids[0], 0, curve(1)).expect("still serving");
        plane.run_epoch();
        drop(plane);

        let store = Store::open(&dir, 1).expect("reopen again");
        assert_eq!(store.recovery().torn_bytes(), 0);
        let plane = ShardedReconfigService::new(1);
        let summary = plane.restore(&store).expect("restores");
        assert_eq!(summary.epochs, 2, "the post-recovery epoch journaled");
        std::fs::remove_dir_all(&dir).ok();
    }
}
