//! Integration tests for the beyond-the-paper extensions: Futility
//! Scaling as Talus's substrate, prefetching agnosticism, phase-change
//! adaptation (Assumption 1 under stress), and the Corollary-7 convexity
//! of the offline MIN oracle.

use talus_core::MissCurve;
use talus_sim::monitor::UmonPair;
use talus_sim::part::FutilityScaled;
use talus_sim::policy::{annotate_next_uses, Belady};
use talus_sim::{
    AccessCtx, CacheModel, LineAddr, SetAssocCache, TalusCacheConfig, TalusSingleCache,
};
use talus_workloads::{AccessGenerator, Phased, Scan, StreamPrefetcher, UniformRandom};

/// Talus over Futility Scaling bridges a scan cliff end to end, with the
/// full planning scale (no unmanaged region to reserve).
#[test]
fn talus_on_futility_scaling_bridges_a_scan_cliff() {
    let scan_lines = 3072u64;
    let capacity = 2048u64;
    let cache = FutilityScaled::new(capacity, 16, 2, 5);
    let monitor = UmonPair::new(capacity, 7);
    let mut talus = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
    let ctx = AccessCtx::new();
    let total = 1_200_000u64;
    for i in 0..total {
        talus.access(LineAddr(i % scan_lines), &ctx);
    }
    assert!(talus.reconfigurations() > 0);
    talus.reset_stats();
    for i in 0..total {
        talus.access(LineAddr(i % scan_lines), &ctx);
    }
    // Hull value: miss rate ≈ 1 − capacity/scan ≈ 1/3, so hit rate ≈ 2/3.
    let hit = talus.stats().hit_rate();
    assert!(hit > 0.5, "Talus+Futility hit rate {hit}, expected ≈ 2/3");
}

/// §VII-B end to end: wrapping the stream in a prefetcher changes the
/// miss curve but not Talus's ability to improve on the prefetched LRU.
#[test]
fn talus_improves_even_with_prefetching_in_front() {
    let scan_lines = 6144u64;
    let capacity = 4096u64;
    let run_talus = || {
        let mut pf = StreamPrefetcher::new(Scan::new(0, scan_lines), 3);
        let cache = talus_sim::part::IdealPartitioned::new(capacity, 2);
        let monitor = UmonPair::new(capacity, 9);
        let mut talus = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
        let ctx = AccessCtx::new();
        let (mut demand, mut misses) = (0u64, 0u64);
        while demand < 1_000_000 {
            let (line, kind) = pf.next_tagged();
            let r = talus.access(line, &ctx);
            if kind.is_demand() {
                demand += 1;
                if demand > 500_000 && r.is_miss() {
                    misses += 1;
                }
            }
        }
        misses as f64 / 500_000.0
    };
    let run_lru = || {
        let mut pf = StreamPrefetcher::new(Scan::new(0, scan_lines), 3);
        let mut cache = SetAssocCache::new(capacity, 16, talus_sim::policy::Lru::new(), 9);
        let ctx = AccessCtx::new();
        let (mut demand, mut misses) = (0u64, 0u64);
        while demand < 1_000_000 {
            let (line, kind) = pf.next_tagged();
            let r = cache.access(line, &ctx);
            if kind.is_demand() {
                demand += 1;
                if demand > 500_000 && r.is_miss() {
                    misses += 1;
                }
            }
        }
        misses as f64 / 500_000.0
    };
    let talus = run_talus();
    let lru = run_lru();
    assert!(
        talus < lru,
        "Talus should beat LRU on the prefetched stream: {talus:.3} vs {lru:.3}"
    );
}

/// Assumption 1 under stress: when the workload changes phase, Talus
/// adapts within a few reconfiguration intervals instead of being stuck
/// with the stale plan.
#[test]
fn talus_adapts_across_phase_changes() {
    // Phase A: scan over 3072 lines (cliff above the 2048-line cache).
    // Phase B: uniform random over 1024 lines (fits easily).
    // Long phases (8 intervals each) so steady-state dominates.
    let interval = 50_000u64;
    let phase_len = 8 * interval;
    let gen = || {
        Phased::new(vec![
            (
                phase_len,
                Box::new(Scan::new(0, 3072)) as Box<dyn AccessGenerator>,
            ),
            (phase_len, Box::new(UniformRandom::new(1 << 20, 1024, 7))),
        ])
    };
    let cache = talus_sim::part::IdealPartitioned::new(2048, 2);
    let monitor = UmonPair::new(2048, 11);
    let mut talus = TalusSingleCache::new(cache, monitor, interval, TalusCacheConfig::new());
    let ctx = AccessCtx::new();
    let mut g = gen();
    // Warm through two full phase cycles.
    for _ in 0..4 * phase_len {
        talus.access(g.next_line(), &ctx);
    }
    talus.reset_stats();
    for _ in 0..4 * phase_len {
        talus.access(g.next_line(), &ctx);
    }
    let hit = talus.stats().hit_rate();
    // Phase B alone would hit ~100%; phase A bridged on the hull gives
    // ~2/3. An adapted Talus therefore lands well above 0.5 overall; a
    // Talus stuck with either stale plan would be dragged toward ~0.5
    // (scan plan applied to the random phase wastes half the cache and
    // vice versa).
    assert!(hit > 0.6, "phase-adaptive hit rate {hit}");
    assert!(
        talus.reconfigurations() >= 8,
        "reconfigured {}",
        talus.reconfigurations()
    );
}

/// Corollary 7 in miniature: the offline MIN oracle's measured miss
/// curve is (near-)convex on a workload whose LRU curve has a cliff.
#[test]
fn belady_min_curve_is_near_convex() {
    // Mixture: 1024-line working set + 1536-line scan (LRU cliff at
    // ~2560 lines).
    let mut trace = Vec::with_capacity(400_000);
    let mut state = 1u64;
    let mut scan = 0u64;
    for _ in 0..400_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
        if state >> 63 == 0 {
            trace.push(LineAddr((state >> 30) % 1024));
        } else {
            scan += 1;
            trace.push(LineAddr((1 << 20) + scan % 1536));
        }
    }
    let next = annotate_next_uses(&trace);
    let sizes = [256u64, 512, 768, 1024, 1280, 1536, 2048, 2560, 3072];
    let mut pts = Vec::new();
    for &cap in &sizes {
        let mut cache = SetAssocCache::new(cap, 16, Belady::new(), 3);
        for (i, &l) in trace.iter().enumerate() {
            if i == trace.len() / 2 {
                cache.reset_stats();
            }
            let ctx = AccessCtx::new().with_next_use(next[i]);
            cache.access(l, &ctx);
        }
        pts.push((cap as f64, cache.stats().miss_rate()));
    }
    let curve = MissCurve::new(pts.iter().copied()).expect("sizes sorted");
    let hull = curve.convex_hull();
    let range = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max)
        - pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let gap = pts
        .iter()
        .map(|&(s, m)| m - hull.value_at(s))
        .fold(0.0f64, f64::max);
    assert!(
        gap / range.max(1e-9) < 0.10,
        "MIN's curve should be near-convex: worst gap {:.1}% of range",
        100.0 * gap / range
    );
}
