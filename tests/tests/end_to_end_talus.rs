//! End-to-end Talus behaviour across partitioning schemes: the Fig. 8
//! claim that Talus is agnostic to the partitioning substrate, plus the
//! §VI coarsening and margin plumbing.

use talus_integration::{lru_miss_rate, scaled_profile, talus_miss_rate};
use talus_sim::part::{IdealPartitioned, VantageLike, WayPartitioned};
use talus_sim::policy::Lru;
use talus_sim::TalusCacheConfig;

const ACCESSES: u64 = 400_000;

/// The canonical scenario: libquantum's scan at half its working set.
/// LRU gets ~0 hits; Talus should recover roughly half the accesses on
/// every scheme.
#[test]
fn talus_is_agnostic_to_partitioning_scheme() {
    let app = scaled_profile("libquantum");
    let ws_lines = talus_sim::mb_to_lines(app.footprint_mb());
    let cache_lines = (ws_lines / 2 / 32) * 32;

    let lru = lru_miss_rate(&app, cache_lines, ACCESSES, 7);
    assert!(lru > 0.95, "LRU should thrash below the scan size: {lru}");

    let ideal = talus_miss_rate(
        IdealPartitioned::new(cache_lines, 2),
        &app,
        ACCESSES,
        TalusCacheConfig::new(),
        7,
    );
    let way = talus_miss_rate(
        WayPartitioned::new(cache_lines, 32, 2, Lru::new(), 3),
        &app,
        ACCESSES,
        TalusCacheConfig::new(),
        7,
    );
    let vantage = talus_miss_rate(
        VantageLike::new(cache_lines, 16, 2, 3),
        &app,
        ACCESSES,
        TalusCacheConfig::for_vantage(),
        7,
    );
    // Hull value at half the scan: ~0.5 misses per access.
    for (name, rate) in [("ideal", ideal), ("way", way), ("vantage", vantage)] {
        assert!(
            rate < 0.75,
            "Talus+{name} should remove most of the cliff: {rate}"
        );
        assert!(rate > 0.40, "Talus+{name} cannot beat the hull: {rate}");
    }
    // Schemes agree within a loose tolerance (Fig. 8's visual claim).
    let max = ideal.max(way).max(vantage);
    let min = ideal.min(way).min(vantage);
    assert!(
        max - min < 0.2,
        "schemes diverge: ideal {ideal}, way {way}, vantage {vantage}"
    );
}

/// Talus must never do noticeably worse than LRU on an already-convex
/// workload (its plans collapse to unpartitioned).
#[test]
fn talus_is_harmless_on_convex_workloads() {
    let app = scaled_profile("astar"); // pure Zipf: smooth convex curve
    let lines = talus_sim::mb_to_lines(4.0 * talus_integration::TEST_SCALE);
    let lru = lru_miss_rate(&app, lines, ACCESSES, 11);
    let talus = talus_miss_rate(
        IdealPartitioned::new(lines, 2),
        &app,
        ACCESSES,
        TalusCacheConfig::new(),
        11,
    );
    assert!(
        talus <= lru + 0.05,
        "Talus ({talus:.3}) should track LRU ({lru:.3}) on convex curves"
    );
}

/// Way partitioning coarsens shadow sizes to whole ways; the §VI-B
/// correction must keep the achieved rate near the hull anyway.
#[test]
fn coarsening_correction_keeps_talus_effective() {
    let app = scaled_profile("omnetpp");
    // Cache with few ways: heavy coarsening (each way = 1/8 of capacity).
    let lines = talus_sim::mb_to_lines(1.0 * talus_integration::TEST_SCALE);
    let lines = (lines / 8) * 8;
    let lru = lru_miss_rate(&app, lines, ACCESSES, 13);
    let talus = talus_miss_rate(
        WayPartitioned::new(lines, 8, 2, Lru::new(), 5),
        &app,
        ACCESSES,
        TalusCacheConfig::new(),
        13,
    );
    assert!(
        talus < lru + 0.03,
        "coarsened Talus ({talus:.3}) must not regress past LRU ({lru:.3})"
    );
}
