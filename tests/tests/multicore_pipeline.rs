//! The full multicore pipeline: monitors → hulls → allocation → shadow
//! partitions, exercised through the public `talus-multicore` API.

use talus_integration::scaled_profile;
use talus_multicore::{
    coefficient_of_variation, run_mix, weighted_speedup, AllocAlgo, RunConfig, SchemeKind,
    SystemConfig,
};
use talus_workloads::AppProfile;

fn cfg(llc_scaled_mb: f64, cores: usize) -> RunConfig {
    let mut system = SystemConfig::eight_core();
    system.cores = cores;
    system.llc_mb = llc_scaled_mb;
    system.reconfig_accesses = 60_000;
    RunConfig::new(system).with_work(4e6).with_seed(23)
}

/// The Fig. 13 mechanism end-to-end: 8 copies of a cliff app, fair Talus
/// beats fair LRU for *every* copy while staying fair.
#[test]
fn fair_talus_makes_equal_shares_productive() {
    let app = scaled_profile("omnetpp");
    let copies: Vec<AppProfile> = (0..4).map(|_| app.clone()).collect();
    // LLC sized so each fair share sits on the plateau below the cliff.
    let c = cfg(4.0 * talus_integration::TEST_SCALE, 4);
    let fair_lru = run_mix(&copies, SchemeKind::PartitionedLru(AllocAlgo::Fair), &c);
    let fair_talus = run_mix(&copies, SchemeKind::TalusLru(AllocAlgo::Fair), &c);

    let ws = weighted_speedup(&fair_talus.ipcs(), &fair_lru.ipcs());
    assert!(
        ws > 1.1,
        "Talus should make the fair split productive: {ws:.3}"
    );
    let cov = coefficient_of_variation(&fair_talus.ipcs());
    assert!(cov < 0.09, "fair Talus must stay fair: CoV {cov:.3}");
    for (t, l) in fair_talus.ipcs().iter().zip(fair_lru.ipcs()) {
        assert!(
            *t > l * 0.98,
            "no copy may lose: talus {t:.3} vs lru {l:.3}"
        );
    }
}

/// Lookahead on the same scenario trades fairness for throughput — the
/// contrast Fig. 13 draws.
#[test]
fn lookahead_sacrifices_fairness_on_homogeneous_cliffs() {
    let app = scaled_profile("omnetpp");
    let copies: Vec<AppProfile> = (0..4).map(|_| app.clone()).collect();
    let c = cfg(4.0 * talus_integration::TEST_SCALE, 4);
    let lookahead = run_mix(
        &copies,
        SchemeKind::PartitionedLru(AllocAlgo::Lookahead),
        &c,
    );
    let talus = run_mix(&copies, SchemeKind::TalusLru(AllocAlgo::Fair), &c);
    let cov_lookahead = coefficient_of_variation(&lookahead.ipcs());
    let cov_talus = coefficient_of_variation(&talus.ipcs());
    assert!(
        cov_lookahead > 4.0 * cov_talus + 0.05,
        "lookahead CoV {cov_lookahead:.3} should dwarf Talus CoV {cov_talus:.3}"
    );
}

/// A heterogeneous mix runs end to end under every scheme, deterministic
/// across repetitions, with all fixed work completed.
#[test]
fn heterogeneous_mix_runs_under_all_schemes() {
    let mix: Vec<AppProfile> = ["mcf", "gcc", "omnetpp", "hmmer"]
        .iter()
        .map(|n| scaled_profile(n))
        .collect();
    let c = cfg(2.0 * talus_integration::TEST_SCALE, 4);
    for scheme in [
        SchemeKind::SharedLru,
        SchemeKind::TaDrrip,
        SchemeKind::PartitionedLru(AllocAlgo::Hill),
        SchemeKind::PartitionedLru(AllocAlgo::Lookahead),
        SchemeKind::TalusLru(AllocAlgo::Hill),
    ] {
        let a = run_mix(&mix, scheme, &c);
        let b = run_mix(&mix, scheme, &c);
        assert_eq!(a.apps.len(), 4);
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert!(x.instructions >= 4e6, "{}: fixed work incomplete", a.scheme);
            assert_eq!(x.cycles, y.cycles, "{}: nondeterministic", a.scheme);
        }
        // IPCs are physical: bounded by each app's base IPC.
        for (r, app) in a.apps.iter().zip(&mix) {
            assert!(r.ipc() > 0.0 && r.ipc() <= app.base_ipc + 1e-9);
        }
    }
}

/// Talus with hill climbing must not lose to plain hill climbing on a
/// cliff-heavy mix (the Fig. 12 ordering, in miniature).
#[test]
fn talus_hill_vs_plain_hill_on_cliff_mix() {
    let mix: Vec<AppProfile> = vec![scaled_profile("libquantum"), scaled_profile("libquantum")];
    // LLC = one working set: hill climbing alone sees no gradient.
    let c = cfg(32.0 * talus_integration::TEST_SCALE, 2);
    let base = run_mix(&mix, SchemeKind::SharedLru, &c);
    let hill = run_mix(&mix, SchemeKind::PartitionedLru(AllocAlgo::Hill), &c);
    let talus = run_mix(&mix, SchemeKind::TalusLru(AllocAlgo::Hill), &c);
    let ws_hill = weighted_speedup(&hill.ipcs(), &base.ipcs());
    let ws_talus = weighted_speedup(&talus.ipcs(), &base.ipcs());
    assert!(
        ws_talus > ws_hill + 0.05,
        "Talus hill ({ws_talus:.3}) should beat plain hill ({ws_hill:.3}) on pure cliffs"
    );
}
