//! Monitors against ground truth, and the Belady-MIN convexity corollary.

use talus_integration::{scaled_profile, scan_trace};
use talus_sim::monitor::{MattsonMonitor, Monitor, UmonPair};
use talus_sim::policy::{annotate_next_uses, Belady, Lru};
use talus_sim::{AccessCtx, CacheModel, SetAssocCache};
use talus_workloads::AccessGenerator;

/// UMON pairs must agree with exact Mattson profiling across the roster's
/// curve shapes (the Assumption-3 statistical claim).
#[test]
fn umon_tracks_mattson_across_profiles() {
    for name in ["libquantum", "omnetpp", "mcf", "gobmk"] {
        let app = scaled_profile(name);
        let llc = talus_sim::mb_to_lines(2.0 * talus_integration::TEST_SCALE).max(256);
        let mut umon = UmonPair::with_sets(llc, 64, 5);
        let mut mattson = MattsonMonitor::new(llc * 4);
        let mut gen = app.generator(3, 0);
        for _ in 0..600_000 {
            let l = gen.next_line();
            umon.record(l);
            mattson.record(l);
        }
        let cu = umon.curve();
        let grid: Vec<u64> = (1..=16).map(|i| i * llc / 4).collect();
        let cm = mattson.curve_on_grid(&grid);
        // Pointwise agreement is impossible exactly *at* a vertical cliff
        // (the UMON quantises sizes to way granularity), so compare the
        // mean absolute error across the curve instead.
        let mae: f64 = grid
            .iter()
            .map(|&s| (cu.value_at(s as f64) - cm.value_at(s as f64)).abs())
            .sum::<f64>()
            / grid.len() as f64;
        assert!(mae < 0.08, "{name}: UMON vs Mattson mean error {mae:.3}");
    }
}

/// Corollary 7: optimal replacement is convex. Verified empirically: MIN's
/// measured miss curve on a mixed trace has no cliffs (hull ≈ curve).
#[test]
fn belady_min_curve_is_convex() {
    // A scan-heavy trace that gives LRU a sharp cliff.
    let trace: Vec<_> = scan_trace(1536, 200_000);
    let next = annotate_next_uses(&trace);
    let sizes: Vec<u64> = (1..=12).map(|i| i * 128).collect();
    let mut points = vec![(0.0, 1.0)];
    for &size in &sizes {
        let mut cache = SetAssocCache::with_geometry(1, size as usize, Belady::new(), 1);
        for (i, &l) in trace.iter().enumerate() {
            let ctx = AccessCtx::new().with_next_use(next[i]);
            cache.access(l, &ctx);
        }
        points.push((size as f64, cache.stats().miss_rate()));
    }
    let curve = talus_core::MissCurve::new(points).expect("sizes are increasing");
    // MIN on a cyclic scan degrades smoothly — no cliff. Allow a small
    // tolerance for warmup noise.
    assert!(
        curve.is_convex(0.05),
        "MIN's curve should be (near) convex: {curve:?}"
    );
    // And MIN dominates LRU at every size.
    for &size in &sizes {
        let mut lru = SetAssocCache::with_geometry(1, size as usize, Lru::new(), 1);
        let ctx = AccessCtx::new();
        for &l in &trace {
            lru.access(l, &ctx);
        }
        let min_rate = curve.value_at(size as f64);
        assert!(
            min_rate <= lru.stats().miss_rate() + 1e-9,
            "MIN must not lose to LRU at {size}"
        );
    }
}

/// The stack property that UMONs rely on: smaller LRU caches' contents are
/// subsets of larger ones, so miss counts are monotone in size.
#[test]
fn lru_miss_curves_are_monotone_in_size() {
    let app = scaled_profile("xalancbmk");
    let mut gen = app.generator(9, 0);
    let mut mon = MattsonMonitor::new(1 << 14);
    for _ in 0..400_000 {
        mon.record(gen.next_line());
    }
    let grid: Vec<u64> = (0..=64).map(|i| i * 256).collect();
    assert!(mon.curve_on_grid(&grid).is_monotone(1e-12));
}
