//! Shared fixtures for the cross-crate integration tests.

#![forbid(unsafe_code)]

use talus_sim::monitor::{MattsonMonitor, Monitor};
use talus_sim::part::PartitionedCacheModel;
use talus_sim::{AccessCtx, LineAddr, TalusCacheConfig, TalusSingleCache};
use talus_workloads::{AccessGenerator, AppProfile};

/// Test scale: shrink every profile footprint by this factor.
pub const TEST_SCALE: f64 = 1.0 / 128.0;

/// A scaled profile by name (panics if unknown — tests use known names).
pub fn scaled_profile(name: &str) -> AppProfile {
    talus_workloads::profile(name)
        .unwrap_or_else(|| panic!("unknown profile {name}"))
        .scaled(TEST_SCALE)
}

/// Measures a profile's exact LRU miss rate at one size (lines) with a
/// Mattson monitor: `(miss_rate_at_size, accesses)`.
pub fn lru_miss_rate(profile: &AppProfile, size_lines: u64, accesses: u64, seed: u64) -> f64 {
    let mut gen = profile.generator(seed, 0);
    let mut mon = MattsonMonitor::new(size_lines.max(1) * 2);
    for _ in 0..accesses {
        mon.record(gen.next_line());
    }
    mon.curve_on_grid(&[0, size_lines])
        .value_at(size_lines as f64)
}

/// Runs a Talus single-app cache over a profile and returns the achieved
/// miss rate after warmup.
pub fn talus_miss_rate<C: PartitionedCacheModel>(
    cache: C,
    profile: &AppProfile,
    accesses: u64,
    config: TalusCacheConfig,
    seed: u64,
) -> f64 {
    let cap = cache.capacity_lines();
    let mon = MattsonMonitor::new(cap * 4);
    let mut talus = TalusSingleCache::new(cache, mon, (accesses / 8).max(20_000), config);
    let mut gen = profile.generator(seed, 0);
    let ctx = AccessCtx::new();
    for _ in 0..accesses {
        talus.access(gen.next_line(), &ctx);
    }
    talus.reset_stats();
    let mut gen = profile.generator(seed.wrapping_add(1), 0);
    for _ in 0..accesses {
        talus.access(gen.next_line(), &ctx);
    }
    talus.stats().miss_rate()
}

/// A deterministic cyclic-scan trace of `len` accesses over `lines` lines.
pub fn scan_trace(lines: u64, len: usize) -> Vec<LineAddr> {
    (0..len as u64).map(|i| LineAddr(i % lines)).collect()
}
