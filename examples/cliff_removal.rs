//! Cliff removal across a size sweep: the paper's Fig. 1 as a library use
//! case.
//!
//! ```text
//! cargo run -p talus-examples --release --example cliff_removal
//! ```
//!
//! Sweeps LLC sizes for the libquantum-like profile (a 32 MB cyclic scan,
//! scaled 16× down) and prints LRU vs Talus MPKI side by side, plus the
//! analytic hull for reference. Demonstrates: monitors, profiles, the
//! Talus single-app wrapper, and curve math working together.

use talus_core::{talus_curve, MissCurve};
use talus_examples::{banner, row};
use talus_sim::monitor::UmonPair;
use talus_sim::part::VantageLike;
use talus_sim::policy::Lru;
use talus_sim::{
    mb_to_lines, AccessCtx, CacheModel, SetAssocCache, TalusCacheConfig, TalusSingleCache,
};
use talus_workloads::{profile, AccessGenerator};

const SCALE: f64 = 1.0 / 16.0;
const WARMUP: u64 = 150_000;
const MEASURE: u64 = 300_000;

fn main() {
    let app = profile("libquantum")
        .expect("roster has libquantum")
        .scaled(SCALE);
    let apki = app.apki;
    banner("libquantum: a 32 MB scan (16x scaled) swept over LLC sizes");
    println!(
        "  {:>8} {:>12} {:>12} {:>12}",
        "MB", "LRU MPKI", "Talus MPKI", "hull MPKI"
    );

    // Analytic hull from the true step curve, for reference.
    let ws = mb_to_lines(32.0 * SCALE) as f64;
    let step = MissCurve::from_samples(&[0.0, ws - 1.0, ws, 2.0 * ws], &[1.0, 1.0, 0.0, 0.0])
        .expect("step curve is valid");
    let hull = talus_curve(&step);

    for paper_mb in [4.0, 8.0, 16.0, 24.0, 32.0, 40.0] {
        let lines = (mb_to_lines(paper_mb * SCALE) / 32) * 32;
        // Plain LRU.
        let mut lru = SetAssocCache::new(lines, 16, Lru::new(), 1);
        let mut gen = app.generator(1, 0);
        let ctx = AccessCtx::new();
        for _ in 0..WARMUP {
            lru.access(gen.next_line(), &ctx);
        }
        lru.reset_stats();
        for _ in 0..MEASURE {
            lru.access(gen.next_line(), &ctx);
        }
        // Talus on a Vantage-like array.
        let cache = VantageLike::new(lines, 16, 2, 2);
        let monitor = UmonPair::new(lines, 3);
        let mut talus =
            TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::for_vantage());
        let mut gen = app.generator(1, 0);
        for _ in 0..WARMUP {
            talus.access(gen.next_line(), &ctx);
        }
        talus.reset_stats();
        for _ in 0..MEASURE {
            talus.access(gen.next_line(), &ctx);
        }
        println!(
            "  {:>8.1} {:>12.1} {:>12.1} {:>12.1}",
            paper_mb,
            apki * lru.stats().miss_rate(),
            apki * talus.stats().miss_rate(),
            apki * hull.value_at(lines as f64)
        );
    }
    banner("reading the table");
    row("LRU", "flat ~33 MPKI until 32 MB, then ~0 (the cliff)");
    row("Talus", "declines roughly linearly along the hull");
    row(
        "residual gap vs hull",
        "Vantage's unmanaged region + margins",
    );
}
