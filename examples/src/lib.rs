//! Shared helpers for the runnable examples.

#![forbid(unsafe_code)]

/// Prints a two-column table row, aligned for terminal reading.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<44} {value}");
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
