//! Pure-math workflow: analyse a measured miss curve offline.
//!
//! ```text
//! cargo run -p talus-examples --release --example miss_curve_analysis
//! ```
//!
//! `talus-core` is usable without any simulator: feed it a miss curve
//! measured on real hardware (perf counters, resctrl sweeps, …) and it
//! answers the planning questions from the paper:
//!
//! 1. where are the cliffs, and what does the convex hull look like?
//! 2. what partition configuration bridges the cliff at a given size?
//! 3. how much would optimal bypassing recover instead (§V-C)?
//! 4. what is the predicted Talus miss curve at *every* size (Theorem 6)?

use talus_core::bypass::{optimal_bypass, optimal_bypass_curve};
use talus_core::{plan, talus_curve, MissCurve, TalusOptions, TalusPlan};
use talus_examples::{banner, row};

fn main() {
    // A curve like the paper's Fig. 3: measured MPKI for a workload with
    // ~2 MB of random-access data plus a 3 MB sequential buffer. Sizes in
    // MB, values in MPKI — talus-core is unit-agnostic.
    let sizes = [
        0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 6.0, 8.0, 10.0,
    ];
    let mpki = [
        24.0, 21.0, 18.0, 15.0, 12.0, 12.0, 12.0, 12.0, 12.0, 12.0, 3.0, 3.0, 3.0, 3.0,
    ];
    let curve = MissCurve::from_samples(&sizes, &mpki).expect("measured curve is valid");

    banner("1. Cliffs and the convex hull");
    let hull = curve.convex_hull();
    row("curve points", curve.len());
    row("hull vertices", hull.vertices().len());
    for v in hull.vertices() {
        row(
            &format!("  hull vertex at {:>4.1} MB", v.size),
            format!("{:.1} MPKI", v.misses),
        );
    }
    row("is the raw curve convex?", curve.is_convex(1e-9));
    row("largest hull gap (the cliff)", {
        let worst = sizes
            .iter()
            .map(|&s| curve.value_at(s) - hull.value_at(s))
            .fold(0.0f64, f64::max);
        format!("{worst:.1} MPKI of waste")
    });

    banner("2. Bridge the cliff at 4 MB (Lemma 5 / Theorem 6)");
    let p = plan(&curve, 4.0, TalusOptions::exact()).expect("4 MB is inside the curve");
    match &p {
        TalusPlan::Shadow(cfg) => {
            row(
                "alpha (emulated small cache)",
                format!("{:.1} MB", cfg.alpha),
            );
            row("beta (emulated large cache)", format!("{:.1} MB", cfg.beta));
            row(
                "rho (fraction of accesses to alpha)",
                format!("{:.3}", cfg.rho),
            );
            row(
                "shadow sizes s1 + s2",
                format!("{:.2} + {:.2} MB", cfg.s1, cfg.s2),
            );
            row(
                "expected MPKI",
                format!(
                    "{:.1} (down from {:.1})",
                    cfg.expected_misses,
                    curve.value_at(4.0)
                ),
            );
        }
        TalusPlan::Unpartitioned { .. } => unreachable!("4 MB sits on a plateau"),
    }

    banner("3. What would optimal bypassing get? (§V-C)");
    let b = optimal_bypass(&curve, 4.0).expect("4 MB is inside the curve");
    row("optimal bypass fraction", format!("{:.3}", 1.0 - b.rho));
    row("bypassing MPKI", format!("{:.1}", b.expected_misses));
    row(
        "Talus MPKI (always <= bypassing)",
        format!("{:.1}", p.expected_misses()),
    );
    let bypass_curve = optimal_bypass_curve(&curve);
    let gap = sizes
        .iter()
        .map(|&s| bypass_curve.value_at(s) - hull.value_at(s))
        .fold(0.0f64, f64::max);
    row(
        "max bypassing excess over hull",
        format!("{gap:.1} MPKI (Corollary 8)"),
    );

    banner("4. The full predicted Talus curve");
    let predicted = talus_curve(&curve);
    println!("  size(MB)   LRU(MPKI)   Talus(MPKI)");
    for &s in &sizes {
        println!(
            "  {s:>7.1}   {:>9.1}   {:>11.1}",
            curve.value_at(s),
            predicted.value_at(s)
        );
    }
    assert!(
        predicted.is_convex(1e-9),
        "Theorem 6: the Talus curve is convex"
    );
    println!("\n  The Talus curve is convex — no cliffs — and touches LRU at hull vertices.");
}
