//! Bring your own replacement policy: Talus convexifies anything whose
//! miss curve you can measure.
//!
//! ```text
//! cargo run -p talus-examples --release --example custom_policy
//! ```
//!
//! The paper proves Talus is agnostic to the underlying replacement
//! policy (§IV works for *any* miss curve; §VII-B demonstrates it on
//! SRRIP with multi-monitor sampling). This example shows the downstream
//! workflow: implement [`ReplacementPolicy`] for a policy of your own —
//! here, FIFO, which thrashes on cyclic scans just like LRU — attach a
//! [`CurveSampler`] bank to measure its miss curve (FIFO does not obey
//! the stack property, so a single UMON will not do), and let Talus trace
//! its convex hull.

use talus_examples::{banner, row};
use talus_sim::monitor::{CurveSampler, Monitor};
use talus_sim::part::WayPartitioned;
use talus_sim::policy::{AccessCtx, ReplacementPolicy};
use talus_sim::{CacheModel, LineAddr, SetAssocCache, TalusCacheConfig, TalusSingleCache};

/// First-in, first-out replacement: evict the oldest *inserted* line,
/// ignoring hits entirely. Simple, real (many TLBs use it), and cliffy.
#[derive(Debug, Clone, Default)]
struct Fifo {
    inserted_at: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl ReplacementPolicy for Fifo {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.inserted_at = vec![0; sets * ways];
        self.ways = ways;
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {
        // FIFO: hits do not refresh age.
    }

    fn choose_victim(&mut self, set: usize, candidates: &[usize]) -> usize {
        *candidates
            .iter()
            .min_by_key(|&&w| self.inserted_at[set * self.ways + w])
            .expect("candidates are non-empty")
    }

    fn on_insert(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.clock += 1;
        self.inserted_at[set * self.ways + way] = self.clock;
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

/// The workload: a cyclic scan (cliff at 6144 lines) plus a small random
/// working set.
fn workload(i: u64, state: &mut u64) -> LineAddr {
    if i % 3 == 0 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
        LineAddr((1 << 30) + (*state >> 33) % 1024)
    } else {
        LineAddr((i / 3) % 6144)
    }
}

fn main() {
    let cache_lines = 4096u64;

    banner("Plain FIFO: the cliff");
    let ctx = AccessCtx::new();
    let mut fifo = SetAssocCache::new(cache_lines, 16, Fifo::default(), 7);
    let mut state = 1u64;
    for i in 0..600_000u64 {
        fifo.access(workload(i, &mut state), &ctx);
    }
    fifo.reset_stats();
    let mut state2 = 1u64;
    for i in 0..600_000u64 {
        fifo.access(workload(i, &mut state2), &ctx);
    }
    let fifo_miss = fifo.stats().miss_rate();
    row("FIFO miss rate at 4096 lines", format!("{fifo_miss:.3}"));

    banner("Measure FIFO's miss curve (multi-monitor sampling)");
    // FIFO lacks the stack property, so we use the paper's §VI-C recipe:
    // one sampled shadow monitor per curve point (16 points up to 2x the
    // cache; each monitor runs FIFO at a different sampled scale).
    let sizes: Vec<u64> = (1..=16).map(|i| i * cache_lines * 2 / 16).collect();
    let mut sampler = CurveSampler::with_policy(
        |_seed| Box::new(Fifo::default()) as Box<dyn ReplacementPolicy>,
        &sizes,
        1024,
        16,
        42,
    );
    let mut state3 = 1u64;
    for i in 0..600_000u64 {
        sampler.record(workload(i, &mut state3));
    }
    let curve = sampler.curve();
    row(
        "measured miss rate at 2048",
        format!("{:.3}", curve.value_at(2048.0)),
    );
    row(
        "measured miss rate at 4096",
        format!("{:.3}", curve.value_at(4096.0)),
    );
    row(
        "measured miss rate at 8192",
        format!("{:.3}", curve.value_at(8192.0)),
    );

    banner("Talus on FIFO");
    // Same FIFO policy, now under Talus with way partitioning. The
    // planner reads the sampled curve every 50k accesses.
    let cache = WayPartitioned::new(cache_lines, 32, 2, Fifo::default(), 11);
    let monitor = CurveSampler::with_policy(
        |_seed| Box::new(Fifo::default()) as Box<dyn ReplacementPolicy>,
        &sizes,
        1024,
        16,
        43,
    );
    let mut talus = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
    let mut state4 = 1u64;
    for i in 0..600_000u64 {
        talus.access(workload(i, &mut state4), &ctx);
    }
    talus.reset_stats();
    let mut state5 = 1u64;
    for i in 0..600_000u64 {
        talus.access(workload(i, &mut state5), &ctx);
    }
    let talus_miss = talus.stats().miss_rate();
    row("Talus+W/FIFO miss rate", format!("{talus_miss:.3}"));
    row(
        "improvement over FIFO",
        format!("{:.0}%", (1.0 - talus_miss / fifo_miss) * 100.0),
    );

    banner("Takeaway");
    println!("  Talus never needed to know the policy was FIFO — only its miss curve.");
    println!("  Any policy + any curve source (UMON, sampling bank, offline profile) works.");
    assert!(
        talus_miss < fifo_miss * 0.9,
        "Talus should improve on plain FIFO ({talus_miss:.3} vs {fifo_miss:.3})"
    );
}
