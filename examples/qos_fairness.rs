//! QoS and fairness: equal allocations that actually work (the paper's
//! Fig. 13 scenario as an API demo).
//!
//! ```text
//! cargo run -p talus-examples --release --example qos_fairness
//! ```
//!
//! Eight copies of a cliff application share an LLC. Fair (equal)
//! partitioning of plain LRU gives every copy a below-cliff share — nobody
//! benefits. Lookahead helps throughput by giving one lucky copy
//! everything — grossly unfair. Talus makes the fair split productive:
//! every copy speeds up equally.

use talus_examples::{banner, row};
use talus_multicore::{
    coefficient_of_variation, run_mix, AllocAlgo, RunConfig, SchemeKind, SystemConfig,
};
use talus_workloads::{profile, AppProfile};

const SCALE: f64 = 1.0 / 16.0;

fn main() {
    let app = profile("omnetpp")
        .expect("roster has omnetpp")
        .scaled(SCALE);
    let copies: Vec<AppProfile> = (0..8).map(|_| app.clone()).collect();
    banner("scenario");
    row("application", "8 x omnetpp (cliff at 2 MB paper-scale)");
    row(
        "shared LLC",
        "8 MB paper-scale: each fair share sits ON the cliff",
    );

    let mut system = SystemConfig::eight_core();
    system.llc_mb = 8.0 * SCALE;
    system.reconfig_accesses = 80_000;
    let cfg = RunConfig::new(system).with_work(6e6).with_seed(11);

    banner("results (lower CoV = fairer)");
    println!(
        "  {:<28} {:>12} {:>12} {:>14}",
        "scheme", "mean IPC", "CoV of IPC", "slowest copy"
    );
    for scheme in [
        SchemeKind::SharedLru,
        SchemeKind::PartitionedLru(AllocAlgo::Fair),
        SchemeKind::PartitionedLru(AllocAlgo::Lookahead),
        SchemeKind::PartitionedLru(AllocAlgo::Imbalanced),
        SchemeKind::TalusLru(AllocAlgo::Fair),
    ] {
        let r = run_mix(&copies, scheme, &cfg);
        let ipcs = r.ipcs();
        let mean = ipcs.iter().sum::<f64>() / ipcs.len() as f64;
        let cov = coefficient_of_variation(&ipcs);
        let worst = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "  {:<28} {:>12.3} {:>12.3} {:>14.3}",
            scheme.label(),
            mean,
            cov,
            worst
        );
    }

    banner("the point");
    row(
        "Lookahead",
        "raises the mean by feeding a few copies — CoV explodes",
    );
    row(
        "Talus + fair",
        "equal shares become productive: high mean, tiny CoV",
    );
    println!("\nWith convex miss curves, the fair allocation is also the utility-maximal one");
    println!("(paper §II-D) — no imbalanced time-multiplexing tricks needed.");
}
