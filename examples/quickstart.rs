//! Quickstart: remove a performance cliff in five steps.
//!
//! ```text
//! cargo run -p talus-examples --release --example quickstart
//! ```
//!
//! Walks the paper's §III worked example end to end: measure a miss curve,
//! convexify it, plan the shadow partitions, and verify the resulting
//! cache really achieves the hull.

use talus_core::{plan, MissCurve, TalusOptions};
use talus_examples::{banner, row};
use talus_sim::monitor::MattsonMonitor;
use talus_sim::part::IdealPartitioned;
use talus_sim::{AccessCtx, LineAddr, TalusCacheConfig, TalusSingleCache};

fn main() {
    banner("Step 1: a workload with a cliff");
    // A cyclic scan over 6144 lines. Under LRU, any cache smaller than the
    // scan gets *zero* hits: the canonical cliff (libquantum's pattern).
    let scan_lines = 6144u64;
    let cache_lines = 4096u64; // our cache is 2/3 of the scan
    row("scan working set (lines)", scan_lines);
    row("cache capacity (lines)", cache_lines);

    banner("Step 2: the miss curve, from theory");
    // A scan's LRU miss curve is a step: 100% misses below the working
    // set, ~0% above. Talus only needs this curve — nothing else.
    let curve = MissCurve::from_samples(
        &[0.0, 2048.0, 4096.0, 6143.0, 6144.0, 8192.0],
        &[1.0, 1.0, 1.0, 1.0, 0.0, 0.0],
    )
    .expect("example curve is valid");
    row(
        "miss rate at 4096 lines (LRU)",
        curve.value_at(cache_lines as f64),
    );

    banner("Step 3: convexify and plan");
    let talus_plan = plan(&curve, cache_lines as f64, TalusOptions::new())
        .expect("cache size is inside the curve domain");
    let cfg = talus_plan.shadow().expect("the cache sits on the plateau");
    row("hull vertex alpha (lines)", cfg.alpha);
    row("hull vertex beta (lines)", cfg.beta);
    row("sampling rate rho (to alpha)", format!("{:.3}", cfg.rho));
    row(
        "shadow partition sizes",
        format!("{:.0} + {:.0}", cfg.s1, cfg.s2),
    );
    row(
        "expected miss rate on the hull",
        format!("{:.3}", cfg.expected_misses),
    );

    banner("Step 4: run it on simulated hardware");
    // TalusSingleCache wires a monitor + planner + partitioned cache
    // together and reconfigures itself every 50k accesses.
    let cache = IdealPartitioned::new(cache_lines, 2);
    let monitor = MattsonMonitor::new(4 * scan_lines);
    let mut talus = TalusSingleCache::new(cache, monitor, 50_000, TalusCacheConfig::new());
    let ctx = AccessCtx::new();
    let total = 1_200_000u64;
    for i in 0..total {
        talus.access(LineAddr(i % scan_lines), &ctx);
    }
    // Skip warmup: measure a fresh window.
    talus.reset_stats();
    for i in 0..total {
        talus.access(LineAddr(i % scan_lines), &ctx);
    }

    banner("Step 5: the cliff is gone");
    let achieved = talus.stats().miss_rate();
    row("LRU would achieve (miss rate)", "1.000  (zero hits)");
    row("hull predicts", format!("{:.3}", cfg.expected_misses));
    row("Talus achieved", format!("{:.3}", achieved));
    row("reconfigurations", talus.reconfigurations());
    assert!(
        achieved < 0.5,
        "Talus should convert a 100%-miss cliff into roughly proportional hits"
    );
    println!(
        "\nTalus turned a 100%-miss plateau into ~{:.0}% hits — the convex hull in action.",
        (1.0 - achieved) * 100.0
    );
}
