//! Shared-cache partitioning: why convexity makes the simple algorithm
//! good (the paper's §VII-D argument on one mix).
//!
//! ```text
//! cargo run -p talus-examples --release --example shared_cache_partitioning
//! ```
//!
//! Runs a 4-app mix on a shared LLC under five schemes and reports
//! weighted/harmonic speedups over unpartitioned LRU — the library's
//! multi-programmed API in one screen of code.

use talus_examples::{banner, row};
use talus_multicore::{
    harmonic_speedup, run_mix, weighted_speedup, AllocAlgo, RunConfig, SchemeKind, SystemConfig,
};
use talus_workloads::{profile, AppProfile};

const SCALE: f64 = 1.0 / 16.0;

fn main() {
    // A mix of two cliff apps and two cache-friendly apps.
    let mix: Vec<AppProfile> = ["omnetpp", "xalancbmk", "gcc", "mcf"]
        .iter()
        .map(|n| profile(n).expect("roster has the app").scaled(SCALE))
        .collect();
    banner("mix");
    for app in &mix {
        row(
            app.name,
            format!(
                "APKI {:.0}, footprint {:.2} MB (scaled)",
                app.apki,
                app.footprint_mb()
            ),
        );
    }

    let mut system = SystemConfig::eight_core();
    system.cores = mix.len();
    system.llc_mb = 4.0 * SCALE; // 4 MB paper-scale
    system.reconfig_accesses = 80_000;
    let cfg = RunConfig::new(system).with_work(8e6).with_seed(7);

    banner("running schemes (fixed work per app)");
    let base = run_mix(&mix, SchemeKind::SharedLru, &cfg);
    println!(
        "  {:<28} {:>10} {:>10}   per-app IPC",
        "scheme", "weighted", "harmonic"
    );
    for scheme in [
        SchemeKind::SharedLru,
        SchemeKind::TaDrrip,
        SchemeKind::PartitionedLru(AllocAlgo::Hill),
        SchemeKind::PartitionedLru(AllocAlgo::Lookahead),
        SchemeKind::TalusLru(AllocAlgo::Hill),
    ] {
        let r = run_mix(&mix, scheme, &cfg);
        let ws = weighted_speedup(&r.ipcs(), &base.ipcs());
        let hs = harmonic_speedup(&r.ipcs(), &base.ipcs());
        let ipcs: Vec<String> = r.ipcs().iter().map(|i| format!("{i:.2}")).collect();
        println!(
            "  {:<28} {:>9.3}x {:>9.3}x   [{}]",
            scheme.label(),
            ws,
            hs,
            ipcs.join(", ")
        );
    }

    banner("what to look for");
    row(
        "Hill/LRU vs Lookahead/LRU",
        "plain hill climbing can stall on cliffy curves",
    );
    row(
        "Talus+V/LRU (Hill)",
        "hill climbing on hulls — simple AND effective",
    );
    row(
        "TA-DRRIP",
        "good throughput, but hardware-fixed: no QoS control",
    );
}
