//! Vendored, dependency-free stand-in for the crates.io [`rand`] crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the *small* slice of the `rand` 0.8 API it actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`seq::SliceRandom::choose_multiple`].
//!
//! The generator is a fixed [xoshiro256\*\*] so simulation results are
//! deterministic across platforms and toolchain upgrades — a property the
//! experiments rely on and which the real `SmallRng` explicitly does *not*
//! promise.
//!
//! [`rand`]: https://docs.rs/rand/0.8
//! [xoshiro256\*\*]: https://prng.di.unimi.it/
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.gen_range(0u64..10);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator core: the minimal trait every RNG implements.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be seeded from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw bits
/// (stand-in for `rand::distributions::Standard` sampling).
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's widening-multiply mapping; the worst-case bias is
                // span / 2^64, far below anything a simulation can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`]
/// (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256\*\*).
    ///
    /// Unlike the real `rand::rngs::SmallRng`, the algorithm is fixed, so
    /// seeded streams are reproducible forever.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Extension methods for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Chooses `amount` distinct elements uniformly at random, in
        /// random order. If the slice has fewer than `amount` elements,
        /// all of them are returned.
        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;

        /// Chooses one element uniformly at random, or `None` if empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            // Partial Fisher–Yates over an index vector.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + rng.gen_range(0..(idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let k = rng.gen_range(0u64..10);
            assert!(k < 10);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_multiple_is_distinct_and_sized() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pool: Vec<u32> = (0..20).collect();
        let picked: Vec<&u32> = pool.choose_multiple(&mut rng, 8).collect();
        assert_eq!(picked.len(), 8);
        let mut sorted: Vec<u32> = picked.iter().map(|&&x| x).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "choose_multiple must not repeat elements");
    }

    #[test]
    fn choose_multiple_truncates_to_len() {
        let mut rng = SmallRng::seed_from_u64(4);
        let pool = [1u8, 2, 3];
        assert_eq!(pool.choose_multiple(&mut rng, 8).count(), 3);
    }
}
