//! Vendored, dependency-free stand-in for the crates.io [`criterion`]
//! benchmarking crate.
//!
//! The build environment has no network access, so this shim implements the
//! slice of the criterion 0.5 API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a real (if statistically simpler)
//! measurement loop: warm-up, then `sample_size` timed samples, reporting
//! the median per-iteration time and throughput to stdout.
//!
//! No HTML reports, no outlier analysis, no baseline comparison; benches
//! remain runnable (`cargo bench`) and their numbers remain comparable
//! run-to-run on the same machine. Real criterion's substring filtering
//! is supported (`cargo bench -- monitor_` runs only matching benches),
//! which is how `scripts/bench_baseline.sh` produces fast hot-path-only
//! subsets for `scripts/bench_compare.sh`.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput specification for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median per-iteration time of the measured samples.
    result_ns: f64,
}

impl Bencher {
    /// Runs `routine` in a warm-up phase and then over `sample_size` timed
    /// samples, recording the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so all samples fit in the measurement window.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2] * 1e9;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{:8.2} ms", ns / 1_000_000.0)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<48} time: {}{rate}", format_time(ns));
}

/// The benchmark harness entry point (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Substring filter on full bench names; non-matching benches are
    /// skipped entirely.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration, as real criterion does after
    /// building the user's configuration: the first non-flag argument is a
    /// substring filter on full bench names (`cargo bench -- monitor_`
    /// runs only the monitor benches). Called by [`criterion_group!`];
    /// flags such as cargo's `--bench` are ignored, and a filter already
    /// set via [`with_filter`](Criterion::with_filter) is kept when the
    /// command line provides none.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .or(self.filter.take());
        self
    }

    /// Replaces the bench-name substring filter directly.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result_ns: 0.0,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if !self.matches(&id.to_string()) {
            return self;
        }
        let mut b = self.bencher();
        f(&mut b);
        report(&id.to_string(), b.result_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group only (the parent
    /// `Criterion`'s configuration is untouched, as in real criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    fn bencher(&self) -> Bencher {
        let mut b = self.criterion.bencher();
        if let Some(n) = self.sample_size {
            b.sample_size = n;
        }
        b
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&name) {
            return self;
        }
        let mut b = self.bencher();
        f(&mut b);
        report(&name, b.result_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&name) {
            return self;
        }
        let mut b = self.bencher();
        f(&mut b, input);
        report(&name, b.result_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function, supporting
/// both the plain and the `name = ..; config = ..; targets = ..` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        #[doc = "Benchmark group entry point generated by `criterion_group!`."]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            criterion = criterion.configure_from_args();
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("p", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4))
            .with_filter("keep");
        let mut ran = Vec::new();
        c.bench_function("keep_me", |b| {
            b.iter(|| black_box(1));
            ran.push("keep_me");
        });
        c.bench_function("skip_me", |_| ran.push("skip_me"));
        let mut g = c.benchmark_group("group_keep");
        g.bench_function("inner", |b| {
            b.iter(|| black_box(1));
            ran.push("group_keep/inner");
        });
        g.finish();
        let mut g = c.benchmark_group("other");
        g.bench_function("inner", |_| ran.push("other/inner"));
        g.finish();
        assert_eq!(ran, vec!["keep_me", "group_keep/inner"]);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("lru").to_string(), "lru");
    }
}
