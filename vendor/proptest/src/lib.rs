//! Vendored, dependency-free stand-in for the crates.io [`proptest`] crate.
//!
//! The build environment has no network access, so this shim implements the
//! slice of the proptest API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]` support);
//! - [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//!   implemented for numeric ranges and tuples;
//! - [`any`], [`collection::vec`], and [`ProptestConfig::with_cases`];
//! - [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Semantics differ from real proptest in one deliberate way: there is **no
//! shrinking**. On failure the macro panics with the case number and the
//! deterministic per-test seed, which is enough to replay a failure (the
//! RNG is seeded from the test's name, so runs are reproducible).
//!
//! [`proptest`]: https://docs.rs/proptest/1

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type carried by failing property-test cases.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Configuration for a `proptest!` block (subset of the real struct).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name, so each property gets a distinct but
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of random values (shrinking-free subset of proptest's
/// `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns —
    /// the way to make one strategy's output depend on another's.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

// Signed ranges go through i128 so that spans wider than the type's
// positive half (e.g. `i32::MIN..i32::MAX`) neither overflow the
// subtraction nor the final offset addition.
macro_rules! impl_signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "arbitrary value" strategy (subset of
/// proptest's `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced values; real proptest generates NaN/inf too,
        // but the workspace's properties all operate on finite inputs.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of type `T` (subset of `proptest::arbitrary`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifications for [`vec()`]: an exact length or a
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring
    //! `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ArbitraryValue, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Unlike real proptest, skipped cases still count toward the case total.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that checks the body against `config.cases` random
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (1u32..=3).generate(&mut rng);
            assert!((1..=3).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_handle_full_width_spans() {
        let mut rng = TestRng::from_name("signed");
        for _ in 0..1000 {
            let v = (i32::MIN..i32::MAX).generate(&mut rng);
            assert!((i32::MIN..i32::MAX).contains(&v));
            let w = (i64::MIN..=i64::MAX).generate(&mut rng);
            let _ = w; // full-width inclusive range: any value is in range
            let x = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..100, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = crate::collection::vec(0u64..100, 4usize).generate(&mut rng);
        assert_eq!(exact.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires strategies, tuples, maps, and assertions together.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0u64..100, 1u64..100),
            v in crate::collection::vec(0.0f64..1.0, 1..5),
            n in (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(n), n)),
        ) {
            prop_assert!(a < 100, "a = {}", a);
            prop_assert_eq!(n.len(), n[0]);
            prop_assume!(b > 0);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
