#!/usr/bin/env bash
# Panic guard for the serving plane and its journal.
#
# The partial-failure contract (see ARCHITECTURE.md, "Failure model")
# says the plane degrades — quarantine, typed errors, poison recovery —
# instead of panicking. This guard keeps that true going forward: it
# fails if any non-test production source in crates/serve/src or
# crates/store/src calls `.unwrap()` or `.expect(` without an explicit
# audit marker.
#
# Exclusions:
#   - main.rs            the demo driver; a panic there aborts a smoke
#                        run, not the plane
#   - #[cfg(test)] mods  unwrap in tests is the assertion idiom
#   - comment lines      doc examples (`//!`, `///`) aren't compiled in
#   - `// audited:` hits a deliberate, reviewed panic site; the marker
#                        must say why panicking is correct there
#
# Usage: scripts/check_panic_guard.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for f in crates/serve/src/*.rs crates/store/src/*.rs; do
    [ "$(basename "$f")" = "main.rs" ] && continue
    hits=$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { in_test = 1 }
        in_test                         { next }
        /^[[:space:]]*\/\//             { next }
        /\/\/ audited:/                 { next }
        /\.unwrap\(\)|\.expect\(/       { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
    ' "$f")
    if [ -n "$hits" ]; then
        echo "$hits"
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo
    echo "panic guard: un-audited .unwrap()/.expect( in production code." >&2
    echo "Recover (e.g. lock poisoning: .unwrap_or_else(|e| e.into_inner())), return a" >&2
    echo "typed degraded error, or append '// audited: <why a panic is correct here>'." >&2
    exit 1
fi
echo "panic guard: crates/serve/src and crates/store/src production code is clean."
