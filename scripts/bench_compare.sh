#!/usr/bin/env bash
# Diff two bench baselines (as written by scripts/bench_baseline.sh) and
# flag hot-path regressions beyond 10%.
#
# Usage: scripts/bench_compare.sh OLD.json NEW.json [--threshold PCT] [--warn-only]
#
# Typical perf-PR flow:
#   scripts/bench_baseline.sh /tmp/new.json
#   scripts/bench_compare.sh results/bench_baseline.json /tmp/new.json
#
# CI runs the same comparison --warn-only (shared-runner timings are too
# noisy to gate on); regenerate the committed baseline on a quiet dev
# machine before claiming measured wins.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q --release -p talus-bench --bin bench_compare -- "$@"
