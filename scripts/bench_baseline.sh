#!/usr/bin/env bash
# Regenerate results/bench_baseline.json from a one-shot `cargo bench` run.
#
# The vendored criterion shim prints one `<name>  time: <value> <unit>`
# line per benchmark; this script normalises every entry to nanoseconds
# and emits a sorted, diff-stable JSON map. Perf PRs rerun it (on the
# same machine class!) and diff the committed baseline with
# scripts/bench_compare.sh to claim measured wins.
#
# Usage: scripts/bench_baseline.sh [output.json] [filter]
#
# A filter substring restricts the run to matching bench names (the
# shim's criterion-style filtering), e.g. a fast hot-path-only subset:
#   scripts/bench_baseline.sh /tmp/hot.json monitor_
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-results/bench_baseline.json}"
filter="${2:-}"

cargo bench -p talus-bench -- "$filter" |
    awk '
        /time:/ {
            name = $1
            for (i = 1; i <= NF; i++) if ($i == "time:") { v = $(i + 1); u = $(i + 2) }
            ns = v + 0
            if (u == "µs") ns *= 1e3
            else if (u == "ms") ns *= 1e6
            else if (u == "s") ns *= 1e9
            printf "%s %.2f\n", name, ns
        }' |
    sort |
    awk '
        BEGIN {
            print "{"
            print "  \"_note\": \"median ns/iter per bench, from scripts/bench_baseline.sh (vendored criterion shim). Regenerate on the same machine class before comparing.\","
            print "  \"benches\": {"
        }
        {
            if (n++) printf ",\n"
            printf "    \"%s\": %s", $1, $2
        }
        END {
            print "\n  }"
            print "}"
        }' >"$out"

count=$(grep -c '": [0-9]' "$out")
echo "wrote $out ($count benches)"
